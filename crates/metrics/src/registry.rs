//! The [`MetricsRegistry`]: one ordered home for every measurement.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::events::{EventLog, DEFAULT_EVENT_CAPACITY};
use crate::histogram::Histogram;

/// Accumulated wall-clock time for one named span (non-deterministic
/// section).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WallTiming {
    /// Times the span was entered.
    pub calls: u64,
    /// Total elapsed wall-clock time across all calls.
    pub total: Duration,
}

/// A started wall-clock span; hand it back to
/// [`MetricsRegistry::record_wall`] (or use the closure-based
/// [`MetricsRegistry::time`]).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    // The workspace-wide `disallowed_methods` ban on `Instant::now`
    // (clippy.toml) exists to funnel every wall-clock read through this
    // span module — the one place allowed to call it.
    #[allow(clippy::disallowed_methods)]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A pre-interned counter slot: increments through a handle skip the
/// name lookup (and any key formatting) entirely, making the hot path
/// allocation-free.
///
/// Handles are only meaningful for the registry that issued them
/// ([`MetricsRegistry::counter_handle`]); they stay valid for that
/// registry's whole lifetime.
///
/// # Examples
///
/// ```
/// use beeps_metrics::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// let h = m.counter_handle("channel.energy");
/// for _ in 0..3 {
///     m.inc_handle(h, 2); // no lookup, no allocation
/// }
/// assert_eq!(m.counter("channel.energy"), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Named counters, histograms, a bounded event log, and (separately)
/// wall-clock timings.
///
/// All deterministic collections are `BTreeMap`-keyed, so iteration
/// order — and therefore every rendering — is a pure function of the
/// recorded names and values, never of insertion or scheduling order.
/// Counter *values* live in a dense slot vector indexed through the
/// name map, so per-increment work on the interned path
/// ([`MetricsRegistry::inc_handle`]) is one add, no lookup.
///
/// Equality (`PartialEq`) compares **only the deterministic section**
/// (counters, histograms, events); wall-clock timings are excluded, so
/// two runs of the same seeded workload compare equal even though their
/// wall times differ. Counter slot order (which handle got which index)
/// is likewise excluded: only the name → value mapping counts.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// Counter name → slot index into `counter_values`.
    counter_slots: BTreeMap<String, usize>,
    counter_values: Vec<u64>,
    histograms: BTreeMap<String, Histogram>,
    events: EventLog,
    wall: BTreeMap<String, WallTiming>,
}

impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &Self) -> bool {
        self.counters().eq(other.counters())
            && self.histograms == other.histograms
            && self.events == other.events
    }
}

impl MetricsRegistry {
    /// An empty registry with the default event-log capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An empty registry whose event ring retains `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            counter_slots: BTreeMap::new(),
            counter_values: Vec::new(),
            histograms: BTreeMap::new(),
            events: EventLog::with_capacity(capacity),
            wall: BTreeMap::new(),
        }
    }

    // --- deterministic section -------------------------------------

    /// Interns the counter `name` (creating it at 0) and returns a
    /// [`CounterHandle`] for allocation-free increments via
    /// [`MetricsRegistry::inc_handle`].
    pub fn counter_handle(&mut self, name: &str) -> CounterHandle {
        let slot = self.slot(name);
        CounterHandle(slot)
    }

    /// Adds `by` to an interned counter: one array add, no lookup, no
    /// allocation — safe for per-round/per-beep hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `handle` was issued by a different registry (slot out
    /// of range; a foreign in-range handle silently hits the wrong
    /// counter, so don't mix registries).
    #[inline]
    pub fn inc_handle(&mut self, handle: CounterHandle, by: u64) {
        self.counter_values[handle.0] += by;
    }

    /// Adds `by` to the counter `name` (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        let slot = self.slot(name);
        self.counter_values[slot] += by;
    }

    /// Interns one counter per index — `<prefix>.000`, `<prefix>.001`, …
    /// (three zero-padded digits, so name order equals index order up to
    /// 1000 entries) — and returns their handles in index order.
    ///
    /// This is the per-party pattern: intern once before the round
    /// loop, then [`MetricsRegistry::inc_handle`] inside it.
    pub fn indexed_handles(&mut self, prefix: &str, count: usize) -> Vec<CounterHandle> {
        (0..count)
            .map(|i| self.counter_handle(&format!("{prefix}.{i:03}")))
            .collect()
    }

    fn slot(&mut self, name: &str) -> usize {
        if let Some(&slot) = self.counter_slots.get(name) {
            return slot;
        }
        let slot = self.counter_values.len();
        self.counter_values.push(0);
        self.counter_slots.insert(name.to_owned(), slot);
        slot
    }

    /// Current value of counter `name` (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_slots
            .get(name)
            .map_or(0, |&slot| self.counter_values[slot])
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_slots
            .iter()
            .map(|(k, &slot)| (k.as_str(), self.counter_values[slot]))
    }

    /// Records `value` into the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// The histogram `name`, if anything was observed into it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Records an event into the bounded ring (see [`EventLog`]).
    pub fn event(&mut self, label: impl Into<String>, round: u64, value: u64) {
        self.events.push(label, round, value);
    }

    /// The event log.
    #[must_use]
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    // --- wall-clock (non-deterministic) section --------------------

    /// Folds a finished [`Stopwatch`] into the wall timing `name`.
    pub fn record_wall(&mut self, name: &str, elapsed: Duration) {
        let t = self.wall.entry(name.to_owned()).or_default();
        t.calls += 1;
        t.total += elapsed;
    }

    /// Runs `f` inside a wall-clock span named `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let sw = Stopwatch::start();
        let out = f();
        self.record_wall(name, sw.elapsed());
        out
    }

    /// All wall timings in name order (non-deterministic values).
    pub fn wall(&self) -> impl Iterator<Item = (&str, WallTiming)> {
        self.wall.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Zeroes every measurement in place while keeping interned counter
    /// slots, histogram keys, and all allocations — so a scratch
    /// registry reused across trials records each trial exactly as a
    /// fresh registry would, minus the per-trial allocation.
    ///
    /// Observational equivalence to a fresh registry: counters reset to
    /// 0 (an interned-but-zero counter merges and compares identically
    /// to an absent one once the key exists anywhere in the aggregate),
    /// histograms and wall timings empty in place, and the event ring
    /// restarts at zero recorded with its capacity unchanged.
    pub fn reset(&mut self) {
        for v in &mut self.counter_values {
            *v = 0;
        }
        for h in self.histograms.values_mut() {
            h.reset();
        }
        self.events.reset();
        for t in self.wall.values_mut() {
            *t = WallTiming::default();
        }
    }

    // --- aggregation ------------------------------------------------

    /// Folds every measurement of `other` into `self`.
    ///
    /// Counter and histogram merging is commutative, so aggregate
    /// *values* cannot depend on merge order; the event ring and any
    /// rendering of it keep the order in which merges were applied, so
    /// callers wanting bitwise-stable output must merge in a canonical
    /// order (the trial runner merges in trial-index order).
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, &slot) in &other.counter_slots {
            let mine = self.slot(name);
            self.counter_values[mine] += other.counter_values[slot];
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge_from(h);
        }
        self.events.merge_from(&other.events);
        for (name, &t) in &other.wall {
            let mine = self.wall.entry(name.clone()).or_default();
            mine.calls += t.calls;
            mine.total += t.total;
        }
    }

    /// Whether the deterministic section is completely empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counter_slots.is_empty() && self.histograms.is_empty() && self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("a", 2);
        m.inc("a", 3);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn handles_and_names_hit_the_same_counter() {
        let mut m = MetricsRegistry::new();
        let h = m.counter_handle("c");
        m.inc_handle(h, 2);
        m.inc("c", 3);
        let h2 = m.counter_handle("c");
        assert_eq!(h, h2, "re-interning must return the same slot");
        m.inc_handle(h2, 5);
        assert_eq!(m.counter("c"), 10);
        assert_eq!(m.counters().collect::<Vec<_>>(), vec![("c", 10)]);
    }

    #[test]
    fn interning_order_does_not_affect_equality_or_merge() {
        // Same logical content, different slot assignment order.
        let mut a = MetricsRegistry::new();
        let ax = a.counter_handle("x");
        let ay = a.counter_handle("y");
        a.inc_handle(ax, 1);
        a.inc_handle(ay, 2);
        let mut b = MetricsRegistry::new();
        let by = b.counter_handle("y");
        let bx = b.counter_handle("x");
        b.inc_handle(by, 2);
        b.inc_handle(bx, 1);
        assert_eq!(a, b);
        let mut merged = MetricsRegistry::new();
        merged.counter_handle("y"); // pre-intern in yet another order
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.counter("x"), 2);
        assert_eq!(merged.counter("y"), 4);
    }

    #[test]
    fn interned_counter_starts_at_zero_and_lists() {
        let mut m = MetricsRegistry::new();
        m.counter_handle("later");
        assert_eq!(m.counter("later"), 0);
        assert!(!m.is_empty(), "interned counters are part of the registry");
        assert_eq!(m.counters().collect::<Vec<_>>(), vec![("later", 0)]);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = MetricsRegistry::new();
        a.inc("x", 1);
        a.observe("h", 10);
        a.event("e", 1, 0);
        let mut b = MetricsRegistry::new();
        b.inc("x", 2);
        b.inc("y", 7);
        b.observe("h", 20);
        a.merge_from(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().sum(), 30);
        assert_eq!(a.events().recorded(), 1);
    }

    #[test]
    fn merge_order_cannot_change_aggregates() {
        let regs: Vec<MetricsRegistry> = (0..4)
            .map(|i| {
                let mut m = MetricsRegistry::new();
                m.inc("c", i + 1);
                m.observe("h", 10 * (i + 1));
                m
            })
            .collect();
        let mut fwd = MetricsRegistry::new();
        for r in &regs {
            fwd.merge_from(r);
        }
        let mut rev = MetricsRegistry::new();
        for r in regs.iter().rev() {
            rev.merge_from(r);
        }
        assert_eq!(fwd.counter("c"), rev.counter("c"));
        assert_eq!(fwd.histogram("h"), rev.histogram("h"));
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let mut a = MetricsRegistry::new();
        a.inc("c", 1);
        let mut b = a.clone();
        b.record_wall("span", Duration::from_millis(5));
        assert_eq!(a, b, "wall timings must not affect determinism checks");
        b.inc("c", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn reset_then_refill_aggregates_like_fresh_registries() {
        let record = |m: &mut MetricsRegistry, salt: u64| {
            m.inc("c", salt);
            if salt.is_multiple_of(2) {
                m.inc("even", 1);
            }
            m.observe("h", salt * 3);
            m.event("e", salt, 1);
            m.time("w", || ());
        };
        let mut fresh_merged = MetricsRegistry::new();
        for salt in 1..=4 {
            let mut fresh = MetricsRegistry::new();
            record(&mut fresh, salt);
            fresh_merged.merge_from(&fresh);
        }
        let mut scratch = MetricsRegistry::new();
        let mut reset_merged = MetricsRegistry::new();
        for salt in 1..=4 {
            scratch.reset();
            record(&mut scratch, salt);
            reset_merged.merge_from(&scratch);
        }
        assert_eq!(fresh_merged, reset_merged);
        // Event order, not just totals.
        let a: Vec<_> = fresh_merged.events().iter().collect();
        let b: Vec<_> = reset_merged.events().iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn reset_keeps_interned_handles_valid() {
        let mut m = MetricsRegistry::new();
        let h = m.counter_handle("c");
        m.inc_handle(h, 5);
        m.observe("hist", 9);
        m.reset();
        assert_eq!(m.counter("c"), 0);
        assert_eq!(m.histogram("hist").unwrap().count(), 0);
        m.inc_handle(h, 2);
        assert_eq!(m.counter("c"), 2);
    }

    #[test]
    fn time_records_calls() {
        let mut m = MetricsRegistry::new();
        let out = m.time("span", || 42);
        assert_eq!(out, 42);
        let (name, t) = m.wall().next().unwrap();
        assert_eq!(name, "span");
        assert_eq!(t.calls, 1);
    }
}
