//! Text renderings of a [`MetricsRegistry`]: the aligned terminal
//! tables behind `beeps metrics` / `--metrics`, and a Prometheus-style
//! text exposition (`--metrics-format prom`) for future service
//! deployment.
//!
//! [`MetricsRegistry::render_table`] and
//! [`MetricsRegistry::render_phase_table`] cover only the deterministic
//! section, so their output is byte-identical for any thread count;
//! wall-clock timings render separately via
//! [`MetricsRegistry::render_wall`] under an explicit
//! "non-deterministic" banner.

use std::fmt::Write as _;

use crate::registry::MetricsRegistry;

/// The simulation phases every scheme attributes rounds to, in display
/// order (mirrors `beeps_core`'s `PhaseRounds`).
const PHASES: [&str; 3] = ["chunk", "owners", "verify"];

impl MetricsRegistry {
    /// Renders the deterministic section (counters, histograms, event
    /// summary) as aligned `name value` lines.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters()
            .map(|(n, _)| n.len())
            .chain(self.histograms().map(|(n, _)| n.len() + "(p50..)".len()))
            .max()
            .unwrap_or(0);
        if self.counters().next().is_some() {
            out.push_str("counters:\n");
            for (name, v) in self.counters() {
                let _ = writeln!(out, "  {name:<width$}  {v}");
            }
        }
        if self.histograms().next().is_some() {
            out.push_str("histograms (count/min/mean/max):\n");
            for (name, h) in self.histograms() {
                let mean = h.mean().unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "  {name:<width$}  {} / {} / {mean:.1} / {}",
                    h.count(),
                    h.min().unwrap_or(0),
                    h.max().unwrap_or(0),
                );
            }
        }
        let ev = self.events();
        if ev.recorded() > 0 {
            let _ = writeln!(
                out,
                "events: {} recorded, {} retained, {} dropped (capacity {})",
                ev.recorded(),
                ev.len(),
                ev.dropped(),
                ev.capacity(),
            );
        }
        out
    }

    /// Renders a per-phase table over every scheme that recorded
    /// `sim.<scheme>.rounds.<phase>` counters:
    ///
    /// ```text
    /// scheme       chunk  owners  verify   total  rewinds  energy  corrupted
    /// rewind        1234     567      89    1890        3    4567         12
    /// ```
    ///
    /// Deterministic; returns an empty string when no scheme reported.
    #[must_use]
    pub fn render_phase_table(&self) -> String {
        let mut schemes: Vec<String> = Vec::new();
        for (name, _) in self.counters() {
            if let Some(rest) = name.strip_prefix("sim.") {
                if let Some(scheme) = rest.strip_suffix(".rounds.chunk") {
                    schemes.push(scheme.to_owned());
                }
            }
        }
        if schemes.is_empty() {
            return String::new();
        }
        let header = [
            "scheme",
            "chunk",
            "owners",
            "verify",
            "total",
            "rewinds",
            "energy",
            "corrupted",
        ];
        let mut rows: Vec<Vec<String>> = vec![header.iter().map(|s| (*s).to_owned()).collect()];
        for scheme in &schemes {
            let phase = |p: &str| self.counter(&format!("sim.{scheme}.rounds.{p}"));
            let mut row = vec![scheme.clone()];
            for p in PHASES {
                row.push(phase(p).to_string());
            }
            row.push(
                self.counter(&format!("sim.{scheme}.rounds.total"))
                    .to_string(),
            );
            for suffix in ["rewinds", "energy", "corrupted_rounds"] {
                row.push(self.counter(&format!("sim.{scheme}.{suffix}")).to_string());
            }
            rows.push(row);
        }
        let widths: Vec<usize> = (0..header.len())
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::from("per-phase rounds by scheme:\n");
        for row in &rows {
            out.push_str("  ");
            for (c, cell) in row.iter().enumerate() {
                let w = widths[c];
                if c == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the wall-clock section under an explicit banner. The
    /// values here are real elapsed times: they vary run to run and are
    /// excluded from every reproducibility check.
    #[must_use]
    pub fn render_wall(&self) -> String {
        if self.wall().next().is_none() {
            return String::new();
        }
        let width = self.wall().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out =
            String::from("wall clock (NON-DETERMINISTIC, excluded from reproducibility checks):\n");
        for (name, t) in self.wall() {
            let _ = writeln!(
                out,
                "  {name:<width$}  {:>10.3} ms total over {} call(s)",
                t.total.as_secs_f64() * 1e3,
                t.calls,
            );
        }
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`--metrics-format prom`). Counters and histogram series carry a
    /// `beeps_` prefix with names sanitised to `[a-z0-9_]`. Wall-clock
    /// spans are deliberately absent — like the JSON `metrics` block,
    /// the exposition covers only the deterministic section, so it is
    /// byte-identical for any thread count; use
    /// [`MetricsRegistry::render_wall`] for elapsed times.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let metric = prom_name(name);
            let _ = writeln!(out, "# TYPE beeps_{metric}_total counter");
            let _ = writeln!(out, "beeps_{metric}_total {v}");
        }
        for (name, h) in self.histograms() {
            let metric = prom_name(name);
            let _ = writeln!(out, "# TYPE beeps_{metric} histogram");
            let mut cumulative = 0u64;
            for (bucket, count) in h.nonzero_buckets() {
                cumulative += count;
                let le = crate::histogram::Histogram::bucket_upper_bound(bucket);
                let _ = writeln!(out, "beeps_{metric}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "beeps_{metric}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "beeps_{metric}_sum {}", h.sum());
            let _ = writeln!(out, "beeps_{metric}_count {}", h.count());
        }
        // The event-ring totals are always present, even at zero: a
        // counter that only appears once events flow breaks rate() and
        // "did we drop anything?" alerts on scrapes taken before the
        // first storm.
        let ev = self.events();
        out.push_str("# TYPE beeps_events_recorded_total counter\n");
        let _ = writeln!(out, "beeps_events_recorded_total {}", ev.recorded());
        out.push_str("# TYPE beeps_events_dropped_total counter\n");
        let _ = writeln!(out, "beeps_events_dropped_total {}", ev.dropped());
        if !ev.is_empty() {
            let mut by_label: std::collections::BTreeMap<&str, u64> =
                std::collections::BTreeMap::new();
            for e in ev.iter() {
                *by_label.entry(e.label.as_str()).or_insert(0) += 1;
            }
            out.push_str("# TYPE beeps_events_retained gauge\n");
            for (label, count) in by_label {
                let _ = writeln!(
                    out,
                    "beeps_events_retained{{label=\"{}\"}} {count}",
                    prom_label_value(label),
                );
            }
        }
        out
    }
}

/// Escapes a string for use inside a Prometheus label value: the text
/// exposition format requires `\` → `\\`, `"` → `\"`, and a literal
/// newline → `\n` (carriage returns ride along as `\r` so values stay
/// one line).
fn prom_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Sanitises a dotted metric name into a Prometheus-safe snake name.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.inc("sim.rewind.rounds.chunk", 100);
        m.inc("sim.rewind.rounds.owners", 40);
        m.inc("sim.rewind.rounds.verify", 10);
        m.inc("sim.rewind.rounds.total", 150);
        m.inc("sim.rewind.rewinds", 2);
        m.inc("sim.rewind.energy", 321);
        m.inc("sim.rewind.corrupted_rounds", 5);
        m.observe("sim.rewind.rounds", 150);
        m.event("sim.rewind.rewind_storm", 150, 2);
        m
    }

    #[test]
    fn table_lists_counters_and_events() {
        let s = sample().render_table();
        assert!(s.contains("sim.rewind.rewinds"));
        assert!(s.contains("events: 1 recorded"));
    }

    #[test]
    fn phase_table_has_one_row_per_scheme() {
        let s = sample().render_phase_table();
        assert!(s.contains("scheme"));
        assert!(s.contains("rewind"));
        assert!(s.contains("150"), "total column: {s}");
        assert_eq!(s.lines().count(), 3, "banner + header + one scheme: {s}");
    }

    #[test]
    fn phase_table_empty_without_schemes() {
        let mut m = MetricsRegistry::new();
        m.inc("unrelated", 1);
        assert!(m.render_phase_table().is_empty());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let s = sample().render_prometheus();
        assert!(s.contains("# TYPE beeps_sim_rewind_rewinds_total counter"));
        assert!(s.contains("beeps_sim_rewind_rewinds_total 2"));
        assert!(s.contains("beeps_sim_rewind_rounds_bucket{le=\"+Inf\"} 1"));
        assert!(s.contains("beeps_sim_rewind_rounds_sum 150"));
        assert!(s.contains("beeps_events_recorded_total 1"));
        assert!(s.contains("beeps_events_dropped_total 0"));
        assert!(s.contains("beeps_events_retained{label=\"sim.rewind.rewind_storm\"} 1"));
    }

    #[test]
    fn prometheus_event_totals_present_even_when_empty() {
        let s = MetricsRegistry::new().render_prometheus();
        assert!(s.contains("beeps_events_recorded_total 0"));
        assert!(s.contains("beeps_events_dropped_total 0"));
        assert!(
            !s.contains("beeps_events_retained{"),
            "no series at zero: {s}"
        );
    }

    #[test]
    fn prometheus_event_drop_accounting_survives_ring_eviction() {
        let mut m = MetricsRegistry::new();
        for i in 0..2000u64 {
            m.event("storm", i, 1);
        }
        let s = m.render_prometheus();
        assert!(s.contains("beeps_events_recorded_total 2000"));
        assert!(s.contains("beeps_events_dropped_total 976"), "{s}");
        assert!(s.contains("beeps_events_retained{label=\"storm\"} 1024"));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let mut m = MetricsRegistry::new();
        // Built outside the call so the lint's literal-key charset check
        // doesn't read this deliberately hostile label as a metric key.
        let hostile = "weird\"label\\with\nnewline\rcr".to_owned();
        m.event(hostile, 0, 1);
        let s = m.render_prometheus();
        assert!(
            s.contains(r#"beeps_events_retained{label="weird\"label\\with\nnewline\rcr"} 1"#),
            "{s}"
        );
        assert_eq!(
            s.matches("beeps_events_retained{").count(),
            1,
            "one series, not split by the raw newline: {s}"
        );
    }

    #[test]
    fn prometheus_exposition_excludes_wall() {
        let mut m = sample();
        m.record_wall("sim.rewind.simulate", std::time::Duration::from_millis(3));
        assert!(!m.render_prometheus().contains("wall"));
    }

    #[test]
    fn wall_section_is_marked_non_deterministic() {
        let mut m = sample();
        assert!(m.render_wall().is_empty());
        m.record_wall("sim.rewind.simulate", std::time::Duration::from_millis(1));
        let s = m.render_wall();
        assert!(s.contains("NON-DETERMINISTIC"));
        assert!(s.contains("sim.rewind.simulate"));
    }

    #[test]
    fn rendering_is_reproducible() {
        let m = sample();
        assert_eq!(m.render_table(), m.render_table());
        assert_eq!(m.render_prometheus(), m.render_prometheus());
    }
}
