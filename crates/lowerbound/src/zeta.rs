//! The progress measure `ζ` of subsection C.2 and Theorem C.2's ceiling.
//!
//! All quantities are computed exactly (no sampling) for a given input
//! vector `x` and transcript `π`, exploiting the structure noted in the
//! proof of Theorem C.2: given a *fixed* transcript, each party's beeps
//! depend only on its own input, so `Pr(x^{i=y}, π) / Pr(x, π)` needs only
//! party `i`'s beep row to be recomputed.

use beeps_channel::EnumerableInputs;

/// Exact analysis of one `(x, π)` pair over the one-sided `0→1` channel.
///
/// The analyzer borrows a protocol whose input domains are enumerable
/// (needed for the feasible sets).
#[derive(Debug)]
pub struct ZetaAnalyzer<'a, P> {
    protocol: &'a P,
    epsilon: f64,
}

/// Everything the lower-bound proof computes for one `(x, π)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ZetaReport {
    /// `log₂ Pr(π | x)` over the one-sided channel (input prior excluded —
    /// uniform priors cancel from every ratio in the proof).
    pub log2_prob: f64,
    /// Size of each party's feasible set `|S^i(π)|`.
    pub feasible_sizes: Vec<usize>,
    /// The good players `G(x, π) = G_1(x) ∩ G_2(π)`.
    pub good_players: Vec<usize>,
    /// Whether the event `𝒢 ≡ |G(x, π)| ≥ n/4` holds.
    pub event_g: bool,
    /// The normalized progress measure
    /// `Z(x, π) / Pr(x, π) = Σ_{i∈G} E_{y∼S^i(π)}[Pr(x^{i=y}, π) / Pr(x, π)]`.
    pub z_ratio: f64,
    /// `ζ(x, π) = Pr(x, π) / Z(x, π) = 1 / z_ratio`.
    pub zeta: f64,
}

impl<'a, P> ZetaAnalyzer<'a, P>
where
    P: EnumerableInputs,
    P::Input: PartialEq,
{
    /// Analyzer for the `ε`-noisy one-sided `0→1` channel.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε < 1` (the ratios in `ζ` divide by both `ε`
    /// and `1 − ε`).
    pub fn new(protocol: &'a P, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "zeta analysis needs eps in (0, 1), got {epsilon}"
        );
        Self { protocol, epsilon }
    }

    /// The beep row of one party against a fixed transcript:
    /// `row[m] = f^i_m(input, π_{<m})`.
    fn beep_row(&self, party: usize, input: &P::Input, pi: &[bool]) -> Vec<bool> {
        (0..pi.len())
            .map(|m| self.protocol.beep(party, input, &pi[..m]))
            .collect()
    }

    /// `log₂ Pr(π | x)` over the one-sided channel, or `None` when the
    /// pair is impossible (`π` shows a 0 in a round somebody beeped).
    pub fn log2_prob(&self, inputs: &[P::Input], pi: &[bool]) -> Option<f64> {
        let n = self.protocol.num_parties();
        assert_eq!(inputs.len(), n, "need one input per party");
        let rows: Vec<Vec<bool>> = (0..n).map(|i| self.beep_row(i, &inputs[i], pi)).collect();
        let mut log2 = 0.0f64;
        for m in 0..pi.len() {
            let true_or = rows.iter().any(|row| row[m]);
            log2 += self.round_log2(true_or, pi[m])?;
        }
        Some(log2)
    }

    /// `log₂` contribution of one round; `None` when impossible.
    fn round_log2(&self, true_or: bool, heard: bool) -> Option<f64> {
        match (true_or, heard) {
            (true, true) => Some(0.0),
            (true, false) => None, // one-sided noise never erases a beep
            (false, true) => Some(self.epsilon.log2()),
            (false, false) => Some((1.0 - self.epsilon).log2()),
        }
    }

    /// The feasible set `S^i(π)`: inputs of party `i` that beep 0 in every
    /// round where `π_m = 0` (subsection C.2). The actual input of a
    /// possible execution is always a member.
    pub fn feasible_set(&self, party: usize, pi: &[bool]) -> Vec<P::Input> {
        self.protocol
            .input_domain(party)
            .into_iter()
            .filter(|y| (0..pi.len()).all(|m| pi[m] || !self.protocol.beep(party, y, &pi[..m])))
            .collect()
    }

    /// `G_1(x)`: parties whose input is unique in `x`.
    pub fn unique_input_players(&self, inputs: &[P::Input]) -> Vec<usize> {
        (0..inputs.len())
            .filter(|&i| {
                inputs
                    .iter()
                    .enumerate()
                    .all(|(j, xj)| j == i || *xj != inputs[i])
            })
            .collect()
    }

    /// Theorem C.2's ceiling `(4/n) · (1/ε)^{4T/n}` on `ζ` under the event
    /// `𝒢` (the paper states it for `ε = 1/3`, where `1/ε = 3`).
    pub fn theorem_c2_bound(&self, t: usize) -> f64 {
        let n = self.protocol.num_parties() as f64;
        (4.0 / n) * (1.0 / self.epsilon).powf(4.0 * t as f64 / n)
    }

    /// Full analysis of one `(x, π)` pair; `None` when `Pr(x, π) = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n`.
    pub fn analyze(&self, inputs: &[P::Input], pi: &[bool]) -> Option<ZetaReport> {
        let n = self.protocol.num_parties();
        assert_eq!(inputs.len(), n, "need one input per party");
        let log2_prob = self.log2_prob(inputs, pi)?;

        // Precompute everyone's beep rows and the per-round beeper counts,
        // so substituting one party's input only touches one row.
        let rows: Vec<Vec<bool>> = (0..n).map(|i| self.beep_row(i, &inputs[i], pi)).collect();
        let counts: Vec<usize> = (0..pi.len())
            .map(|m| rows.iter().filter(|row| row[m]).count())
            .collect();

        let feasible: Vec<Vec<P::Input>> = (0..n).map(|i| self.feasible_set(i, pi)).collect();
        let feasible_sizes: Vec<usize> = feasible.iter().map(Vec::len).collect();

        let sqrt_n = (n as f64).sqrt();
        let g1 = self.unique_input_players(inputs);
        let good_players: Vec<usize> = g1
            .into_iter()
            .filter(|&i| feasible_sizes[i] as f64 > sqrt_n)
            .collect();
        let event_g = good_players.len() * 4 >= n;

        // z_ratio = sum over good players of the mean likelihood ratio of
        // substituting each feasible input.
        let mut z_ratio = 0.0f64;
        for &i in &good_players {
            let mut mean = 0.0f64;
            for y in &feasible[i] {
                let y_row = self.beep_row(i, y, pi);
                let mut delta = 0.0f64;
                let mut possible = true;
                for m in 0..pi.len() {
                    let others = counts[m] - usize::from(rows[i][m]);
                    let or_x = counts[m] > 0;
                    let or_y = others > 0 || y_row[m];
                    if or_x == or_y {
                        continue;
                    }
                    let (Some(a), Some(b)) =
                        (self.round_log2(or_y, pi[m]), self.round_log2(or_x, pi[m]))
                    else {
                        possible = false;
                        break;
                    };
                    delta += a - b;
                }
                if possible {
                    mean += delta.exp2();
                }
            }
            // E_{y ~ S^i}: uniform over the feasible set (non-empty: the
            // actual input always qualifies).
            z_ratio += mean / feasible[i].len() as f64;
        }

        let zeta = if z_ratio > 0.0 { 1.0 / z_ratio } else { 0.0 };
        Some(ZetaReport {
            log2_prob,
            feasible_sizes,
            good_players,
            event_g,
            z_ratio,
            zeta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::{run_noiseless, run_protocol, NoiseModel, Protocol};
    use beeps_protocols::InputSet;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    const EPS: f64 = 1.0 / 3.0;

    fn noiseless_pair(n: usize, inputs: &[usize]) -> (InputSet, Vec<bool>) {
        let p = InputSet::new(n);
        let pi = run_noiseless(&p, inputs).transcript().to_vec();
        (p, pi)
    }

    #[test]
    fn probability_of_noiseless_transcript() {
        // For the naive protocol, the noiseless transcript has
        // probability (1-eps)^{#zero rounds}.
        let inputs = vec![0usize, 2, 4, 6];
        let (p, pi) = noiseless_pair(4, &inputs);
        let analyzer = ZetaAnalyzer::new(&p, EPS);
        let zeros = pi.iter().filter(|&&b| !b).count();
        let expect = (1.0f64 - EPS).log2() * zeros as f64;
        let got = analyzer.log2_prob(&inputs, &pi).unwrap();
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn impossible_transcript_has_no_probability() {
        // pi showing 0 where somebody beeps is impossible one-sidedly.
        let inputs = vec![0usize, 1];
        let p = InputSet::new(2);
        let pi = vec![false, true, false, false]; // party 0 beeped round 0
        assert!(ZetaAnalyzer::new(&p, EPS).log2_prob(&inputs, &pi).is_none());
    }

    #[test]
    fn feasible_set_excludes_contradicted_inputs() {
        // pi = [0, 1, 0, 0]: inputs 0, 2, 3 would beep into a zero round.
        let p = InputSet::new(2);
        let pi = vec![false, true, false, false];
        let analyzer = ZetaAnalyzer::new(&p, EPS);
        assert_eq!(analyzer.feasible_set(0, &pi), vec![1]);
    }

    #[test]
    fn all_ones_transcript_leaves_everything_feasible() {
        let p = InputSet::new(3);
        let pi = vec![true; 6];
        let analyzer = ZetaAnalyzer::new(&p, EPS);
        assert_eq!(analyzer.feasible_set(1, &pi).len(), 6);
    }

    #[test]
    fn unique_input_players_matches_definition() {
        let p = InputSet::new(5);
        let analyzer = ZetaAnalyzer::new(&p, EPS);
        let g1 = analyzer.unique_input_players(&[3, 7, 3, 1, 9]);
        assert_eq!(g1, vec![1, 3, 4]);
    }

    #[test]
    fn zeta_respects_theorem_c2_on_noisy_executions() {
        // Theorem C.2: for every possible (x, pi) where the event G holds,
        // zeta <= (4/n) (1/eps)^{4T/n}. Check on real noisy executions.
        let n = 8;
        let p = InputSet::new(n);
        let analyzer = ZetaAnalyzer::new(&p, EPS);
        let bound = analyzer.theorem_c2_bound(p.length());
        let mut rng = StdRng::seed_from_u64(0xC2);
        let mut checked = 0;
        for seed in 0..60 {
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            let exec = run_protocol(
                &p,
                &inputs,
                NoiseModel::OneSidedZeroToOne { epsilon: EPS },
                seed,
            );
            let pi = exec.views().shared().unwrap().to_vec();
            let report = analyzer
                .analyze(&inputs, &pi)
                .expect("executed transcripts are possible");
            if report.event_g {
                checked += 1;
                assert!(
                    report.zeta <= bound + 1e-9,
                    "zeta {} above bound {bound}",
                    report.zeta
                );
            }
        }
        assert!(checked > 20, "event G should hold often, got {checked}");
    }

    #[test]
    fn actual_input_is_always_feasible() {
        let n = 6;
        let p = InputSet::new(n);
        let analyzer = ZetaAnalyzer::new(&p, EPS);
        let mut rng = StdRng::seed_from_u64(0xFE);
        for seed in 0..20 {
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            let exec = run_protocol(
                &p,
                &inputs,
                NoiseModel::OneSidedZeroToOne { epsilon: EPS },
                seed,
            );
            let pi = exec.views().shared().unwrap();
            for (i, input) in inputs.iter().enumerate() {
                assert!(
                    analyzer.feasible_set(i, pi).contains(input),
                    "actual input excluded from its own feasible set"
                );
            }
        }
    }

    #[test]
    fn longer_transcripts_allow_larger_zeta() {
        // The ceiling grows with T: the mechanism behind "longer protocols
        // can extract more information".
        let p = InputSet::new(8);
        let analyzer = ZetaAnalyzer::new(&p, EPS);
        assert!(analyzer.theorem_c2_bound(64) > analyzer.theorem_c2_bound(16));
    }

    #[test]
    fn zeta_larger_when_inputs_distinguishable() {
        // An all-ones transcript (everything feasible, no information)
        // versus the noiseless transcript (feasible sets collapse):
        // zeta must be larger for the informative transcript.
        let n = 4;
        let inputs = vec![0usize, 2, 4, 6];
        let (p, pi_clean) = noiseless_pair(n, &inputs);
        let analyzer = ZetaAnalyzer::new(&p, EPS);
        let clean = analyzer.analyze(&inputs, &pi_clean).unwrap();
        let blank = analyzer.analyze(&inputs, &vec![true; 2 * n]).unwrap();
        assert!(
            clean.zeta > blank.zeta,
            "informative transcript should score higher: {} vs {}",
            clean.zeta,
            blank.zeta
        );
    }

    #[test]
    #[should_panic(expected = "eps in (0, 1)")]
    fn zero_eps_rejected() {
        let p = InputSet::new(2);
        let _ = ZetaAnalyzer::new(&p, 0.0);
    }
}
