//! Executable machinery of the paper's Ω(log n) lower bound
//! (Theorem 1.1 / Theorem C.1, Appendix C).
//!
//! The proof of Theorem C.1 is a potential argument built from concrete,
//! computable objects; this crate computes all of them **exactly** on real
//! executions so the experiments can watch the proof work:
//!
//! * transcript probabilities `Pr(x, π)` over the one-sided `0→1` channel
//!   (the chain-rule product from the proof of Theorem C.2);
//! * **feasible sets** `S^i(π)` — the inputs of party `i` that beep 0 in
//!   every round where `π` shows a 0 (subsection C.2);
//! * **good players** `G(x, π) = G_1(x) ∩ G_2(π)` — unique-input parties
//!   whose feasible sets stay larger than `√n`, and the event
//!   `𝒢 ≡ |G| ≥ n/4`;
//! * the **progress measure** `Z(x, π)` and
//!   `ζ(x, π) = Pr(x, π) / Z(x, π)`, with Theorem C.2's ceiling
//!   `ζ ≤ (4/n) · (1/ε)^{4T/n}`;
//! * the **overhead crossover** of experiment E2: the minimum per-round
//!   repetition count that makes the trivial `InputSet_n` protocol succeed
//!   — measured to grow like `log n`, the empirical face of the
//!   `Ω(log n)` bound.
//!
//! # Examples
//!
//! ```
//! use beeps_channel::{run_noiseless, Protocol};
//! use beeps_lowerbound::ZetaAnalyzer;
//! use beeps_protocols::InputSet;
//!
//! let protocol = InputSet::new(4);
//! let inputs = vec![1usize, 3, 5, 7];
//! let pi = run_noiseless(&protocol, &inputs).transcript().to_vec();
//!
//! let analyzer = ZetaAnalyzer::new(&protocol, 1.0 / 3.0);
//! let report = analyzer.analyze(&inputs, &pi).expect("possible transcript");
//! // The noiseless transcript of distinct inputs makes everyone good...
//! assert_eq!(report.good_players.len(), 4);
//! // ...and zeta respects Theorem C.2's ceiling.
//! assert!(report.zeta <= analyzer.theorem_c2_bound(protocol.length()) + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crossover;
pub mod theorem_c3;
pub mod zeta;

pub use crossover::{
    measured_success_rate, min_repetitions_exact, CrossoverPoint, MeasuredCrossover,
};
pub use theorem_c3::{audit as theorem_c3_audit, C3Audit};
pub use zeta::{ZetaAnalyzer, ZetaReport};
