//! The overhead crossover of experiment E2: how much repetition the
//! trivial `InputSet_n` protocol needs before it survives the noise.
//!
//! Theorem C.1 says *any* protocol for `InputSet_n` over the one-sided
//! `ε`-noisy channel needs `Ω(n log n)` rounds — an `Ω(log n)`
//! multiplicative overhead over the trivial `2n`-round protocol. The
//! repetition scheme achieves `O(log n)`, so the *minimum* overhead that
//! reaches a fixed success rate is `Θ(log n)`; this module computes that
//! minimum both exactly (binomial tails) and by Monte Carlo simulation,
//! and the `fig2_lower_bound_crossover` bench prints the resulting curve.

use beeps_channel::NoiseModel;
use beeps_core::{RepetitionSimulator, SimulatorConfig};
use beeps_info::tail;
use beeps_protocols::InputSet;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A point on the crossover curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossoverPoint {
    /// Number of parties.
    pub n: usize,
    /// Minimum per-round repetitions reaching the success target.
    pub min_repetitions: usize,
    /// Exact success probability at that repetition count.
    pub success: f64,
}

/// Exact minimum repetitions for the repetition-coded trivial protocol to
/// compute `InputSet_n` with probability at least `success_target`, over
/// the one-sided `0→1` channel with noise `eps`.
///
/// Exactness comes from the protocol's structure: with threshold
/// `⌈r(1+ε)/2⌉`, a true-1 round can never decode wrong (beeps are never
/// erased and the threshold is at most `r`), and each of the `z` true-0
/// rounds independently decodes wrong with probability
/// `P[Binom(r, ε) ≥ thr]`, so success is `(1 − p₀(r))^z`. The number of
/// zero rounds `z` depends on the input; this uses the worst case
/// `z = 2n − 1` (all parties share one input).
///
/// # Panics
///
/// Panics unless `0 < eps < 1` and `0 < success_target < 1`.
///
/// # Examples
///
/// ```
/// use beeps_lowerbound::min_repetitions_exact;
///
/// let p4 = min_repetitions_exact(4, 1.0 / 3.0, 0.9);
/// let p64 = min_repetitions_exact(64, 1.0 / 3.0, 0.9);
/// // More parties -> more rounds to protect -> more repetitions...
/// assert!(p64.min_repetitions > p4.min_repetitions);
/// // ...but only logarithmically so.
/// assert!(p64.min_repetitions < 4 * p4.min_repetitions);
/// ```
pub fn min_repetitions_exact(n: usize, eps: f64, success_target: f64) -> CrossoverPoint {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    assert!(
        success_target > 0.0 && success_target < 1.0,
        "success target must be in (0, 1)"
    );
    let zero_rounds = (2 * n - 1) as f64;
    let thr = (1.0 + eps) / 2.0;
    for r in 1..=4096u64 {
        let p0 = tail::decode_error_one_sided_up(eps, thr, r);
        let success = (1.0 - p0).powf(zero_rounds);
        if success >= success_target {
            return CrossoverPoint {
                n,
                min_repetitions: r as usize,
                success,
            };
        }
    }
    unreachable!("repetition count cap exceeded — eps too close to 1?")
}

/// One measured crossover experiment: the repetition-coded trivial
/// protocol at a fixed `(n, repetitions, eps)`, run trial by trial
/// through [`beeps_core::RepetitionSimulator`].
///
/// The per-trial method makes the Monte Carlo estimate shardable: a
/// harness (e.g. `beeps-bench`'s `TrialRunner`) can hand each trial its
/// own input stream and channel seed and aggregate the booleans in any
/// order. [`measured_success_rate`] is the serial aggregation.
#[derive(Debug, Clone)]
pub struct MeasuredCrossover {
    protocol: InputSet,
    config: SimulatorConfig,
    model: NoiseModel,
    n: usize,
}

impl MeasuredCrossover {
    /// Sets up the measured experiment for `InputSet_n` with the given
    /// per-round repetition count over the one-sided `0→1` channel.
    #[must_use]
    pub fn new(n: usize, repetitions: usize, eps: f64) -> Self {
        let model = NoiseModel::OneSidedZeroToOne { epsilon: eps };
        let mut config = SimulatorConfig::builder(n).model(model).build();
        config.repetitions = repetitions;
        Self {
            protocol: InputSet::new(n),
            config,
            model,
            n,
        }
    }

    /// Runs one trial: samples inputs from `input_rng`, simulates with
    /// channel seed `sim_seed`, and reports whether every party decoded
    /// the correct answer.
    pub fn trial(&self, input_rng: &mut StdRng, sim_seed: u64) -> bool {
        let inputs: Vec<usize> = (0..self.n)
            .map(|_| input_rng.gen_range(0..2 * self.n))
            .collect();
        let expect = self.protocol.answer(&inputs);
        let sim = RepetitionSimulator::new(&self.protocol, self.config.clone());
        let out = sim
            .simulate(&inputs, self.model, sim_seed)
            .expect("repetition simulation is fixed-length");
        out.outputs().iter().all(|o| *o == expect)
    }
}

/// Monte Carlo success rate of the repetition-coded trivial protocol,
/// actually run through [`beeps_core::RepetitionSimulator`] over the
/// one-sided channel — the measured twin of [`min_repetitions_exact`].
///
/// # Panics
///
/// Panics if `trials == 0` or the parameters are out of range.
pub fn measured_success_rate(
    n: usize,
    repetitions: usize,
    eps: f64,
    trials: u32,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let experiment = MeasuredCrossover::new(n, repetitions, eps);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut good = 0u32;
    for t in 0..trials {
        if experiment.trial(&mut rng, seed.wrapping_add(u64::from(t) << 20)) {
            good += 1;
        }
    }
    f64::from(good) / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_grows_like_log_n() {
        let eps = 1.0 / 3.0;
        let r: Vec<usize> = [4usize, 16, 64, 256]
            .iter()
            .map(|&n| min_repetitions_exact(n, eps, 0.9).min_repetitions)
            .collect();
        // Strictly increasing...
        assert!(r.windows(2).all(|w| w[0] < w[1]), "{r:?}");
        // ...with roughly constant increments per 4x in n (log-linear).
        let d1 = r[1] - r[0];
        let d3 = r[3] - r[2];
        assert!(
            d3 <= 3 * d1.max(1) && d1 <= 3 * d3.max(1),
            "increments not log-linear: {r:?}"
        );
    }

    #[test]
    fn exact_point_meets_target() {
        let p = min_repetitions_exact(16, 1.0 / 3.0, 0.9);
        assert!(p.success >= 0.9);
        assert_eq!(p.n, 16);
    }

    #[test]
    fn one_fewer_repetition_misses_target() {
        let eps = 1.0 / 3.0;
        let p = min_repetitions_exact(32, eps, 0.9);
        assert!(p.min_repetitions > 1);
        let r = (p.min_repetitions - 1) as u64;
        let thr = (1.0 + eps) / 2.0;
        let p0 = beeps_info::tail::decode_error_one_sided_up(eps, thr, r);
        let success = (1.0 - p0).powf(63.0);
        assert!(success < 0.9, "minimality violated: {success}");
    }

    #[test]
    fn measured_rate_tracks_exact_prediction() {
        let n = 8;
        let eps = 1.0 / 3.0;
        let point = min_repetitions_exact(n, eps, 0.9);
        // At the crossover the measured rate should be near-or-above
        // target (exact uses worst-case zero-round count, so measured is
        // at least as good in expectation).
        let rate = measured_success_rate(n, point.min_repetitions, eps, 60, 0xE2);
        assert!(rate >= 0.8, "measured {rate} far below predicted 0.9");
        // Far below the crossover the protocol collapses.
        let low = measured_success_rate(n, 1, eps, 60, 0xE3);
        assert!(low <= 0.2, "1 repetition should fail, got {low}");
    }
}
