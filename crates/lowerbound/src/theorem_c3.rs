//! Empirical audit of Theorem C.3: *correct protocols have large ζ*.
//!
//! Theorem C.3 lower-bounds the conditional expectation of the progress
//! measure for any protocol that is usually correct:
//!
//! ```text
//! E[ζ | 𝒢]  ≥  (Pr(C) − Pr(¬𝒢))² / Σ_{(x,π)∈C} Z(x,π)
//!           ≥  (Pr(C) − Pr(¬𝒢))² / √n,
//! ```
//!
//! using Lemma B.7 and the claim that each term `Pr(x', π)` repeats at
//! most `n` times across the double sum (the "at most one way to fix a
//! mismatch per player" argument), which gives `Σ_C Z ≤ √n` via the
//! `|S^i(π)| > √n` bound on good players.
//!
//! [`audit`] measures every quantity on sampled executions and checks the
//! final inequality — so the statement can be watched holding on real
//! protocols of varying length and correctness.

use crate::zeta::ZetaAnalyzer;
use beeps_channel::{run_protocol, EnumerableInputs, NoiseModel};
use rand::{rngs::StdRng, SeedableRng};

/// Everything [`audit`] measures.
#[derive(Debug, Clone, PartialEq)]
pub struct C3Audit {
    /// Monte Carlo estimate of `Pr(C)` — the protocol answering correctly
    /// from the transcript alone.
    pub pr_correct: f64,
    /// Monte Carlo estimate of `Pr(¬𝒢)`.
    pub pr_not_g: f64,
    /// Monte Carlo estimate of `E[ζ | 𝒢]`.
    pub mean_zeta_given_g: f64,
    /// The bound's right-hand side `(Pr(C) − Pr(¬𝒢))² / √n` (0 when the
    /// difference is negative).
    pub rhs: f64,
    /// Whether the measured inequality `E[ζ|𝒢] ≥ rhs` holds.
    pub holds: bool,
    /// Samples contributing to the conditional mean.
    pub g_samples: u32,
}

/// Samples `samples` executions of `protocol` over the one-sided
/// `ε`-noisy channel with inputs drawn by `draw`, grading correctness
/// with `expected`, and audits Theorem C.3's inequality.
///
/// # Panics
///
/// Panics if `samples == 0` or ε is outside `(0, 1)`.
pub fn audit<P, D, E>(
    protocol: &P,
    epsilon: f64,
    samples: u32,
    seed: u64,
    mut draw: D,
    expected: E,
) -> C3Audit
where
    P: EnumerableInputs,
    P::Input: PartialEq,
    D: FnMut(&mut StdRng) -> Vec<P::Input>,
    E: Fn(&[P::Input]) -> P::Output,
{
    assert!(samples > 0, "need at least one sample");
    let analyzer = ZetaAnalyzer::new(protocol, epsilon);
    let n = protocol.num_parties();
    let model = NoiseModel::OneSidedZeroToOne { epsilon };
    let mut rng = StdRng::seed_from_u64(seed);

    let mut correct = 0u32;
    let mut not_g = 0u32;
    let mut zeta_sum = 0.0f64;
    let mut g_samples = 0u32;

    for s in 0..samples {
        let inputs = draw(&mut rng);
        let exec = run_protocol(protocol, &inputs, model, seed ^ (u64::from(s) << 24));
        let pi = exec.views().shared().expect("one-sided noise is shared");
        // Correctness graded on party 0's transcript-determined output.
        if exec.outputs()[0] == expected(&inputs) {
            correct += 1;
        }
        match analyzer.analyze(&inputs, pi) {
            Some(report) if report.event_g => {
                g_samples += 1;
                zeta_sum += report.zeta;
            }
            _ => not_g += 1,
        }
    }

    let pr_correct = f64::from(correct) / f64::from(samples);
    let pr_not_g = f64::from(not_g) / f64::from(samples);
    let mean = if g_samples > 0 {
        zeta_sum / f64::from(g_samples)
    } else {
        0.0
    };
    let diff = (pr_correct - pr_not_g).max(0.0);
    let rhs = diff * diff / (n as f64).sqrt();
    C3Audit {
        pr_correct,
        pr_not_g,
        mean_zeta_given_g: mean,
        rhs,
        holds: mean + 1e-12 >= rhs,
        g_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_protocols::{InputSet, RepeatedInputSet};
    use rand::Rng;

    const EPS: f64 = 1.0 / 3.0;

    fn draw_inputs(n: usize) -> impl FnMut(&mut StdRng) -> Vec<usize> {
        move |rng| (0..n).map(|_| rng.gen_range(0..2 * n)).collect()
    }

    #[test]
    fn inequality_holds_for_the_short_protocol() {
        // The naive protocol is rarely correct under noise: Pr(C) is tiny,
        // the RHS collapses, and the inequality holds trivially — which is
        // exactly how Theorem C.1 escapes contradiction for short
        // protocols.
        let n = 8;
        let p = InputSet::new(n);
        let audit = audit(&p, EPS, 150, 0xC3A, draw_inputs(n), |xs| p.answer(xs));
        assert!(
            audit.pr_correct < 0.1,
            "naive protocol should fail: {audit:?}"
        );
        assert!(audit.holds, "{audit:?}");
    }

    #[test]
    fn inequality_holds_for_a_correct_protocol_with_substance() {
        // A long repetition-coded protocol is usually correct, so the RHS
        // is meaningfully positive — and the measured E[zeta | G] clears
        // it, as Theorem C.3 demands.
        let n = 8;
        let r = 20;
        let thr = ((r as f64) * (1.0 + EPS) / 2.0).ceil() as usize;
        let p = RepeatedInputSet::new(n, r, thr);
        let expected = InputSet::new(n);
        let audit = audit(&p, EPS, 100, 0xC3B, draw_inputs(n), |xs| {
            expected.answer(xs)
        });
        assert!(
            audit.pr_correct > 0.7,
            "repetition protocol should mostly succeed: {audit:?}"
        );
        assert!(audit.rhs > 0.0, "{audit:?}");
        assert!(audit.holds, "Theorem C.3 violated empirically: {audit:?}");
    }

    #[test]
    fn mean_zeta_grows_with_correctness() {
        // Across protocol lengths, E[zeta | G] and Pr(C) rise together —
        // the correlation at the heart of the proof.
        let n = 8;
        let expected = InputSet::new(n);
        let mut last_zeta = 0.0;
        let mut last_correct = 0.0;
        for r in [1usize, 8, 24] {
            let thr = (((r as f64) * (1.0 + EPS) / 2.0).ceil() as usize).clamp(1, r);
            let p = RepeatedInputSet::new(n, r, thr);
            let a = audit(&p, EPS, 80, 0xC3C + r as u64, draw_inputs(n), |xs| {
                expected.answer(xs)
            });
            assert!(a.pr_correct + 1e-9 >= last_correct * 0.8, "{a:?}");
            assert!(a.mean_zeta_given_g + 0.2 >= last_zeta, "{a:?}");
            last_zeta = a.mean_zeta_given_g;
            last_correct = a.pr_correct;
        }
        assert!(last_correct > 0.9);
    }
}
