//! Property-based tests: every protocol's noiseless execution matches an
//! independent reference computation on arbitrary inputs.

use beeps_channel::{run_noiseless, Protocol};
use beeps_protocols::{
    Broadcast, InputSet, LeaderElection, Membership, MultiOr, PointerChase, RepeatedInputSet,
    RollCall,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn input_set_outputs_the_set(n in 1usize..12, seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let p = InputSet::new(n);
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        let expect: BTreeSet<usize> = inputs.iter().copied().collect();
        let exec = run_noiseless(&p, &inputs);
        for out in exec.outputs() {
            prop_assert_eq!(out, &expect);
        }
    }

    #[test]
    fn repeated_input_set_matches_plain(
        n in 1usize..8,
        r in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        let plain = run_noiseless(&InputSet::new(n), &inputs);
        let rep = run_noiseless(&RepeatedInputSet::new(n, r, r / 2 + 1), &inputs);
        prop_assert_eq!(&plain.outputs()[0], &rep.outputs()[0]);
    }

    #[test]
    fn leader_election_elects_the_max(
        ids in prop::collection::vec(0usize..1024, 1..10),
    ) {
        let p = LeaderElection::new(ids.len(), 10);
        let exec = run_noiseless(&p, &ids);
        let max = *ids.iter().max().unwrap();
        for &out in exec.outputs() {
            prop_assert_eq!(out, max);
        }
    }

    #[test]
    fn membership_resolves_the_active_set(
        actives in prop::collection::vec(prop::option::of(0usize..32), 1..8),
    ) {
        let p = Membership::new(actives.len(), 32);
        let exec = run_noiseless(&p, &actives);
        let mut expect: Vec<usize> = actives.iter().flatten().copied().collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(&exec.outputs()[0], &expect);
    }

    #[test]
    fn multi_or_is_the_or(
        rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 8), 1..6),
    ) {
        let p = MultiOr::new(rows.len(), 8);
        let exec = run_noiseless(&p, &rows);
        for m in 0..8 {
            prop_assert_eq!(exec.transcript()[m], rows.iter().any(|r| r[m]));
        }
    }

    #[test]
    fn broadcast_delivers_any_message(
        msg in 0usize..65536,
        speaker in 0usize..4,
    ) {
        let p = Broadcast::new(4, speaker, 16);
        let mut inputs = vec![0usize; 4];
        inputs[speaker] = msg;
        let exec = run_noiseless(&p, &inputs);
        for &out in exec.outputs() {
            prop_assert_eq!(out, msg);
        }
    }

    #[test]
    fn roll_call_counts(bits in prop::collection::vec(any::<bool>(), 1..16)) {
        let p = RollCall::new(bits.len());
        let exec = run_noiseless(&p, &bits);
        let expect = bits.iter().filter(|&&b| b).count();
        prop_assert_eq!(exec.outputs()[0], expect);
    }

    #[test]
    fn pointer_chase_matches_reference(
        tables in prop::collection::vec(
            prop::collection::vec(0usize..8, 8),
            1..4,
        ),
        depth in 1usize..8,
    ) {
        let n = tables.len();
        let p = PointerChase::new(n, 8, depth);
        let exec = run_noiseless(&p, &tables);
        let mut pointer = 0usize;
        for t in 0..depth {
            pointer = tables[t % n][pointer];
        }
        prop_assert_eq!(exec.outputs()[0], pointer);
    }

    /// Protocol trait invariant: transcripts of noiseless executions have
    /// exactly `length()` rounds, for every protocol in the library.
    #[test]
    fn transcript_lengths(n in 1usize..6, seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);

        let p = InputSet::new(n);
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        prop_assert_eq!(run_noiseless(&p, &inputs).transcript().len(), p.length());

        let p = RollCall::new(n);
        let inputs: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        prop_assert_eq!(run_noiseless(&p, &inputs).transcript().len(), p.length());

        let p = LeaderElection::new(n, 6);
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        prop_assert_eq!(run_noiseless(&p, &inputs).transcript().len(), p.length());
    }
}
