//! Deterministic beeping leader election by bitwise maximum — the classic
//! single-hop construction (cf. the leader-election line of work the paper
//! cites: Förster–Seidel–Wattenhofer, Dufoulon–Burman–Beauquier).

use beeps_channel::{EnumerableInputs, Protocol};

/// Leader election / maximum finding over a single-hop beeping network.
///
/// Every party holds a distinct identifier below `2^bits`. The protocol
/// runs one round per identifier bit, most significant first. A party stays
/// a *candidate* while its own identifier agrees with every bit announced
/// so far; in round `b` the candidates whose bit `b` is 1 beep. The
/// transcript spells out the maximum identifier — the elected leader — and
/// is fully **adaptive**: each beep decision depends on the transcript
/// prefix, which makes this protocol a good stress test for the simulation
/// schemes (their verification phases must recompute would-be beeps from
/// committed prefixes).
///
/// # Examples
///
/// ```
/// use beeps_channel::run_noiseless;
/// use beeps_protocols::LeaderElection;
///
/// let p = LeaderElection::new(3, 4); // 3 parties, 4-bit ids
/// let exec = run_noiseless(&p, &[5, 12, 9]);
/// assert_eq!(exec.outputs(), &[12, 12, 12]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderElection {
    n: usize,
    bits: usize,
}

impl LeaderElection {
    /// An election among `n` parties with identifiers in `0..2^bits`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `bits == 0`, or `bits > 32`.
    pub fn new(n: usize, bits: usize) -> Self {
        assert!(n > 0, "need at least one party");
        assert!((1..=32).contains(&bits), "identifier width must be 1..=32");
        Self { n, bits }
    }

    /// Identifier width in bits (also the protocol length).
    pub fn id_bits(&self) -> usize {
        self.bits
    }

    /// Whether `id` still matches the transcript prefix (is a candidate).
    fn is_candidate(&self, id: usize, transcript: &[bool]) -> bool {
        transcript.iter().enumerate().all(|(round, &heard)| {
            let bit = self.id_bit(id, round);
            // A candidate dropped out iff it had a 0 where a 1 was heard.
            // (A 1 where 0 was heard cannot happen noiselessly, but under
            // direct noisy execution it can; such a party *stays* a
            // candidate only if its bit matches, keeping behaviour total.)
            bit == heard
        })
    }

    /// Bit `round` (MSB first) of `id`.
    fn id_bit(&self, id: usize, round: usize) -> bool {
        (id >> (self.bits - 1 - round)) & 1 == 1
    }
}

impl Protocol for LeaderElection {
    type Input = usize;
    type Output = usize;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        self.bits
    }

    fn beep(&self, _party: usize, input: &usize, transcript: &[bool]) -> bool {
        assert!(
            *input < (1usize << self.bits),
            "identifier {input} exceeds {} bits",
            self.bits
        );
        let round = transcript.len();
        self.is_candidate(*input, transcript) && self.id_bit(*input, round)
    }

    fn output(&self, _party: usize, _input: &usize, transcript: &[bool]) -> usize {
        transcript
            .iter()
            .fold(0usize, |acc, &b| (acc << 1) | usize::from(b))
    }
}

impl EnumerableInputs for LeaderElection {
    fn input_domain(&self, _party: usize) -> Vec<usize> {
        assert!(
            self.bits <= 16,
            "enumerating 2^{} ids is unreasonable",
            self.bits
        );
        (0..(1usize << self.bits)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::{run_noiseless, run_protocol, NoiseModel};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn elects_the_maximum_id() {
        let p = LeaderElection::new(4, 6);
        let exec = run_noiseless(&p, &[11, 47, 2, 33]);
        assert_eq!(exec.outputs(), &[47, 47, 47, 47]);
    }

    #[test]
    fn single_party_elects_itself() {
        let p = LeaderElection::new(1, 5);
        assert_eq!(run_noiseless(&p, &[19]).outputs(), &[19]);
    }

    #[test]
    fn random_elections_match_max() {
        let mut rng = StdRng::seed_from_u64(0xE1);
        for _ in 0..40 {
            let n = rng.gen_range(1..10);
            let bits = rng.gen_range(1..10);
            let p = LeaderElection::new(n, bits);
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..(1 << bits))).collect();
            let max = *inputs.iter().max().unwrap();
            assert_eq!(run_noiseless(&p, &inputs).outputs()[0], max);
        }
    }

    #[test]
    fn zero_ids_produce_silent_election() {
        let p = LeaderElection::new(3, 4);
        let exec = run_noiseless(&p, &[0, 0, 0]);
        assert!(exec.transcript().iter().all(|&b| !b));
        assert_eq!(exec.outputs()[0], 0);
    }

    #[test]
    fn noise_can_elect_a_phantom_leader() {
        // With one-sided 0->1 noise the transcript can spell an id nobody
        // holds — the failure mode the coding schemes must prevent.
        let p = LeaderElection::new(2, 10);
        let mut phantom = 0;
        for seed in 0..40 {
            let exec = run_protocol(
                &p,
                &[1, 2],
                NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 },
                seed,
            );
            if exec.outputs()[0] > 2 {
                phantom += 1;
            }
        }
        assert!(phantom > 0, "expected at least one phantom election");
    }

    #[test]
    fn adaptivity_matters() {
        // 12 = 1100, 10 = 1010: party with 10 must drop out after round 1
        // even though its bit 2 is 1.
        let p = LeaderElection::new(2, 4);
        // After transcript [1, 1] (led by 12), party 10 is no candidate.
        assert!(!p.beep(1, &10, &[true, true]));
        // But before hearing anything contradictory it beeps its MSB.
        assert!(p.beep(1, &10, &[]));
    }
}
