//! Adaptive membership resolution by interval search — a single-hop
//! variant of the conflict-resolution/membership problems studied for
//! beeping channels (Huang–Moscibroda).

use beeps_channel::Protocol;

/// `Membership`: a subset of parties is *active*, each holding a distinct
/// identifier in `0..id_space`; everyone must learn the set of active
/// identifiers.
///
/// The protocol runs a depth-first interval search driven entirely by the
/// transcript: each round queries the interval on top of a stack (initially
/// the whole id space); active parties whose id lies in the queried
/// interval beep; a heard beep splits the interval (or reports an id when
/// it is a singleton), silence prunes it. Every beep decision depends on
/// the full transcript prefix, making this the most aggressively
/// *adaptive* workload in the library.
///
/// Length is fixed at `2·id_space − 1` rounds (the worst-case number of
/// queried intervals); once the stack empties the remaining rounds are
/// idle.
///
/// # Examples
///
/// ```
/// use beeps_channel::run_noiseless;
/// use beeps_protocols::Membership;
///
/// let p = Membership::new(4, 8);
/// let inputs = vec![Some(5), None, Some(1), None];
/// let exec = run_noiseless(&p, &inputs);
/// assert_eq!(exec.outputs()[0], vec![1, 5]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Membership {
    n: usize,
    id_space: usize,
}

/// Replayed search state: the interval stack and the ids found so far.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SearchState {
    /// Half-open intervals `[lo, hi)`, top of stack last.
    stack: Vec<(usize, usize)>,
    found: Vec<usize>,
}

impl Membership {
    /// A membership instance for `n` parties over identifiers
    /// `0..id_space`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `id_space` is not a power of two in
    /// `2..=4096`.
    pub fn new(n: usize, id_space: usize) -> Self {
        assert!(n > 0, "need at least one party");
        assert!(
            id_space.is_power_of_two() && (2..=4096).contains(&id_space),
            "id space must be a power of two in 2..=4096"
        );
        Self { n, id_space }
    }

    /// Replays the transcript to reconstruct the search state *before* the
    /// next round.
    fn replay(&self, transcript: &[bool]) -> SearchState {
        let mut state = SearchState {
            stack: vec![(0, self.id_space)],
            found: Vec::new(),
        };
        for &heard in transcript {
            let Some((lo, hi)) = state.stack.pop() else {
                break; // idle rounds after the search completed
            };
            if heard {
                if hi - lo == 1 {
                    state.found.push(lo);
                } else {
                    let mid = lo + (hi - lo) / 2;
                    // Push right first so the left half is queried next.
                    state.stack.push((mid, hi));
                    state.stack.push((lo, mid));
                }
            }
        }
        state
    }
}

impl Protocol for Membership {
    type Input = Option<usize>;
    type Output = Vec<usize>;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        2 * self.id_space - 1
    }

    fn beep(&self, _party: usize, input: &Option<usize>, transcript: &[bool]) -> bool {
        let Some(id) = *input else { return false };
        assert!(id < self.id_space, "id {id} outside id space");
        let state = self.replay(transcript);
        match state.stack.last() {
            Some(&(lo, hi)) => id >= lo && id < hi,
            None => false,
        }
    }

    fn output(&self, _party: usize, _input: &Option<usize>, transcript: &[bool]) -> Vec<usize> {
        let mut found = self.replay(transcript).found;
        found.sort_unstable();
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::{run_noiseless, run_protocol, NoiseModel};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn finds_all_active_ids() {
        let p = Membership::new(5, 16);
        let inputs = vec![Some(0), Some(15), Some(7), None, None];
        let exec = run_noiseless(&p, &inputs);
        assert_eq!(exec.outputs()[0], vec![0, 7, 15]);
    }

    #[test]
    fn empty_membership_finds_nothing() {
        let p = Membership::new(3, 8);
        let inputs = vec![None, None, None];
        let exec = run_noiseless(&p, &inputs);
        assert!(exec.outputs()[0].is_empty());
        // One query of the root interval, then silence forever.
        assert!(exec.transcript().iter().all(|&b| !b));
    }

    #[test]
    fn full_occupancy_uses_whole_budget() {
        let p = Membership::new(8, 8);
        let inputs: Vec<_> = (0..8).map(Some).collect();
        let exec = run_noiseless(&p, &inputs);
        assert_eq!(exec.outputs()[0], (0..8).collect::<Vec<_>>());
        // All 2*8-1 = 15 tree nodes beeped.
        assert_eq!(exec.transcript().iter().filter(|&&b| b).count(), 15);
    }

    #[test]
    fn random_instances_resolve() {
        let mut rng = StdRng::seed_from_u64(0x3E);
        for _ in 0..30 {
            let id_space = 1usize << rng.gen_range(1..7);
            let n = rng.gen_range(1..8);
            let p = Membership::new(n, id_space);
            let mut ids: Vec<usize> = (0..id_space).collect();
            // Distinct ids for active parties.
            for i in 0..n.min(id_space) {
                let j = rng.gen_range(i..id_space);
                ids.swap(i, j);
            }
            let inputs: Vec<Option<usize>> = (0..n)
                .map(|i| {
                    if i < id_space && rng.gen_bool(0.6) {
                        Some(ids[i])
                    } else {
                        None
                    }
                })
                .collect();
            let mut expect: Vec<usize> = inputs.iter().flatten().copied().collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(run_noiseless(&p, &inputs).outputs()[0], expect);
        }
    }

    #[test]
    fn one_sided_noise_fabricates_members() {
        let p = Membership::new(2, 32);
        let inputs = vec![Some(3), None];
        let mut fabricated = 0;
        for seed in 0..40 {
            let exec = run_protocol(
                &p,
                &inputs,
                NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 },
                seed,
            );
            let out = &exec.outputs()[0];
            if out.iter().any(|&id| id != 3) {
                fabricated += 1;
            }
        }
        assert!(fabricated > 20, "only {fabricated}/40 runs fabricated ids");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_id_space_rejected() {
        Membership::new(2, 12);
    }
}
