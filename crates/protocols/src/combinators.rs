//! Protocol combinators: build larger beeping protocols from smaller ones.
//!
//! Real beeping applications chain phases — discover, elect, announce —
//! where a later phase's behaviour depends on an earlier phase's *output*.
//! In the paper's `(T, f, g)` formalism that is still one protocol: the
//! later broadcast functions read the earlier rounds of the transcript.
//! [`Chained`] packages that pattern; [`ParallelRepeat`] runs a protocol
//! `k` times in a row on the same input (the error-amplification shape
//! used by the repetition arguments).

use beeps_channel::Protocol;

/// Sequential composition with data flow: runs `first`, then runs
/// `second` with each party's second-phase input *derived* from its own
/// first-phase input and the first phase's (party-local) output.
///
/// The derivation is re-evaluated from the transcript prefix on every
/// beep, so the composite stays a pure `(T, f, g)` protocol — which means
/// the noise-resilient simulators protect the whole pipeline end to end,
/// including the hand-off.
///
/// # Examples
///
/// Elect a leader, then have *the leader* (not a statically chosen party)
/// broadcast a payload derived from its id:
///
/// ```
/// use beeps_channel::{run_noiseless, Protocol};
/// use beeps_protocols::combinators::Chained;
/// use beeps_protocols::LeaderElection;
///
/// /// Second phase: whoever holds `Some(payload)` beeps it (4 bits).
/// struct Announce;
/// impl Protocol for Announce {
///     type Input = Option<usize>;
///     type Output = usize;
///     fn num_parties(&self) -> usize { 3 }
///     fn length(&self) -> usize { 4 }
///     fn beep(&self, _i: usize, input: &Option<usize>, t: &[bool]) -> bool {
///         input.is_some_and(|m| (m >> (3 - t.len())) & 1 == 1)
///     }
///     fn output(&self, _i: usize, _x: &Option<usize>, t: &[bool]) -> usize {
///         t.iter().fold(0, |acc, &b| (acc << 1) | usize::from(b))
///     }
/// }
///
/// let pipeline = Chained::new(LeaderElection::new(3, 4), Announce, |id, leader| {
///     (*id == leader).then_some(id % 16)
/// });
/// let exec = run_noiseless(&pipeline, &[9, 14, 3]);
/// // Leader is 14; everyone learns (14, 14 % 16).
/// assert_eq!(exec.outputs(), &[(14, 14), (14, 14), (14, 14)]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Chained<P1, P2, F> {
    first: P1,
    second: P2,
    derive: F,
}

impl<P1, P2, F> Chained<P1, P2, F>
where
    P1: Protocol,
    P2: Protocol,
    F: Fn(&P1::Input, P1::Output) -> P2::Input,
{
    /// Chains `first` then `second`; `derive(input₁, output₁)` produces
    /// each party's second-phase input.
    ///
    /// # Panics
    ///
    /// Panics if the protocols disagree on the number of parties.
    pub fn new(first: P1, second: P2, derive: F) -> Self {
        assert_eq!(
            first.num_parties(),
            second.num_parties(),
            "chained protocols must share the party set"
        );
        Self {
            first,
            second,
            derive,
        }
    }

    fn second_input(&self, party: usize, input: &P1::Input, transcript: &[bool]) -> P2::Input {
        let t1 = self.first.length();
        let out1 = self.first.output(party, input, &transcript[..t1]);
        (self.derive)(input, out1)
    }
}

impl<P1, P2, F> Protocol for Chained<P1, P2, F>
where
    P1: Protocol,
    P2: Protocol,
    F: Fn(&P1::Input, P1::Output) -> P2::Input,
{
    type Input = P1::Input;
    type Output = (P1::Output, P2::Output);

    fn num_parties(&self) -> usize {
        self.first.num_parties()
    }

    fn length(&self) -> usize {
        self.first.length() + self.second.length()
    }

    fn beep(&self, party: usize, input: &P1::Input, transcript: &[bool]) -> bool {
        let t1 = self.first.length();
        if transcript.len() < t1 {
            self.first.beep(party, input, transcript)
        } else {
            let input2 = self.second_input(party, input, transcript);
            self.second.beep(party, &input2, &transcript[t1..])
        }
    }

    fn output(&self, party: usize, input: &P1::Input, transcript: &[bool]) -> Self::Output {
        let t1 = self.first.length();
        let out1 = self.first.output(party, input, &transcript[..t1]);
        let input2 = self.second_input(party, input, transcript);
        let out2 = self.second.output(party, &input2, &transcript[t1..]);
        (out1, out2)
    }
}

/// Runs a protocol `k` times back-to-back on the same input, outputting
/// all `k` per-run outputs — the parallel-repetition shape used to
/// amplify success probabilities (and to study whether repetition helps a
/// *noisy* run, cf. footnote 1 of the paper, where the repetition is
/// per-round instead).
///
/// # Examples
///
/// ```
/// use beeps_channel::{run_noiseless, Protocol};
/// use beeps_protocols::combinators::ParallelRepeat;
/// use beeps_protocols::RollCall;
///
/// let p = ParallelRepeat::new(RollCall::new(3), 2);
/// let exec = run_noiseless(&p, &[true, false, true]);
/// assert_eq!(exec.outputs()[0], vec![2, 2]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelRepeat<P> {
    inner: P,
    times: usize,
}

impl<P: Protocol> ParallelRepeat<P> {
    /// Repeats `inner` `times` times.
    ///
    /// # Panics
    ///
    /// Panics if `times == 0`.
    pub fn new(inner: P, times: usize) -> Self {
        assert!(times > 0, "need at least one repetition");
        Self { inner, times }
    }
}

impl<P: Protocol> Protocol for ParallelRepeat<P> {
    type Input = P::Input;
    type Output = Vec<P::Output>;

    fn num_parties(&self) -> usize {
        self.inner.num_parties()
    }

    fn length(&self) -> usize {
        self.inner.length() * self.times
    }

    fn beep(&self, party: usize, input: &P::Input, transcript: &[bool]) -> bool {
        let t = self.inner.length();
        let within = transcript.len() % t;
        let start = transcript.len() - within;
        self.inner
            .beep(party, input, &transcript[start..start + within])
    }

    fn output(&self, party: usize, input: &P::Input, transcript: &[bool]) -> Vec<P::Output> {
        let t = self.inner.length();
        (0..self.times)
            .map(|k| {
                self.inner
                    .output(party, input, &transcript[k * t..(k + 1) * t])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputSet, LeaderElection, RollCall};
    use beeps_channel::{run_noiseless, run_protocol, NoiseModel};

    #[test]
    fn chained_lengths_add() {
        let p = Chained::new(RollCall::new(3), InputSet::new(3), |_, count| count % 6);
        assert_eq!(p.length(), 3 + 6);
    }

    #[test]
    fn chained_data_flow() {
        // Phase 1: roll call; phase 2: every party uses the attendance
        // count as its InputSet input — so the final set is a singleton
        // {count}.
        let p = Chained::new(RollCall::new(4), InputSet::new(4), |_, count| count % 8);
        let exec = run_noiseless(&p, &[true, true, false, true]);
        let (count, set) = &exec.outputs()[0];
        assert_eq!(*count, 3);
        assert_eq!(set.iter().copied().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn chained_second_phase_depends_on_first_under_noise() {
        // Under noise the first phase's (possibly wrong) output feeds the
        // second phase *consistently*: outputs stay internally coherent.
        let p = Chained::new(RollCall::new(4), InputSet::new(4), |_, count| count % 8);
        let mut coherent = 0;
        let trials = 20;
        for seed in 0..trials {
            let exec = run_protocol(
                &p,
                &[true, false, true, false],
                NoiseModel::Correlated { epsilon: 0.2 },
                seed,
            );
            let (count, set) = &exec.outputs()[0];
            // The second phase echoes whatever count phase 1 produced; its
            // own round can still be flipped, so coherence is frequent, not
            // certain (the count's indicator round survives w.p. 1 - eps).
            coherent += u32::from(set.contains(&(count % 8)));
        }
        assert!(
            u64::from(coherent) >= trials / 2,
            "only {coherent}/{trials} coherent"
        );
    }

    #[test]
    fn leader_then_announce_pipeline() {
        struct Announce;
        impl Protocol for Announce {
            type Input = Option<usize>;
            type Output = usize;
            fn num_parties(&self) -> usize {
                4
            }
            fn length(&self) -> usize {
                6
            }
            fn beep(&self, _i: usize, input: &Option<usize>, t: &[bool]) -> bool {
                input.is_some_and(|m| (m >> (5 - t.len())) & 1 == 1)
            }
            fn output(&self, _i: usize, _x: &Option<usize>, t: &[bool]) -> usize {
                t.iter().fold(0, |acc, &b| (acc << 1) | usize::from(b))
            }
        }
        let p = Chained::new(LeaderElection::new(4, 6), Announce, |id, leader| {
            (*id == leader).then_some(id ^ 0x15)
        });
        let ids = [9, 40, 3, 22];
        let exec = run_noiseless(&p, &ids);
        for (leader, payload) in exec.outputs() {
            assert_eq!(*leader, 40);
            assert_eq!(*payload, 40 ^ 0x15);
        }
    }

    #[test]
    fn parallel_repeat_outputs_every_run() {
        let p = ParallelRepeat::new(InputSet::new(2), 3);
        let exec = run_noiseless(&p, &[1, 3]);
        assert_eq!(exec.outputs()[0].len(), 3);
        for out in &exec.outputs()[0] {
            assert!(out.contains(&1) && out.contains(&3));
        }
    }

    #[test]
    fn parallel_repeat_runs_are_noise_independent() {
        // Under noise, separate runs fail independently: majority voting
        // over run outputs recovers the answer more often than one run.
        let p1 = InputSet::new(6);
        let p3 = ParallelRepeat::new(InputSet::new(6), 5);
        let inputs = [0usize, 2, 4, 6, 8, 10];
        let expect = run_noiseless(&p1, &inputs).outputs()[0].clone();
        let model = NoiseModel::Correlated { epsilon: 0.05 };
        let mut single_ok = 0;
        let mut voted_ok = 0;
        for seed in 0..40 {
            let single = run_protocol(&p1, &inputs, model, seed);
            single_ok += u32::from(single.outputs()[0] == expect);
            let multi = run_protocol(&p3, &inputs, model, 1_000 + seed);
            let hits = multi.outputs()[0].iter().filter(|o| **o == expect).count();
            voted_ok += u32::from(hits >= 3);
        }
        assert!(
            voted_ok >= single_ok,
            "majority of 5 runs ({voted_ok}) should beat one run ({single_ok})"
        );
    }

    #[test]
    #[should_panic(expected = "share the party set")]
    fn chained_party_mismatch_rejected() {
        let _ = Chained::new(RollCall::new(2), InputSet::new(3), |_, c| c);
    }
}
