//! A library of noiseless beeping protocols.
//!
//! These are the workloads of the reproduction: the task the paper's lower
//! bound is proved against ([`InputSet`], Appendix A.2), its unrestricted
//! form ([`MultiOr`], subsection 2.2), and a set of classic single-hop
//! beeping applications from the literature the paper cites in its
//! introduction — leader election ([`LeaderElection`]), network-size
//! estimation ([`Census`]), membership resolution ([`Membership`]), and
//! firefly-style phase synchronization ([`FireflySync`]).
//!
//! Every protocol implements [`beeps_channel::Protocol`] — the paper's
//! `(T, {f_m^i}, {g^i})` formalism — and can therefore be
//!
//! * run noiselessly ([`beeps_channel::run_noiseless`]),
//! * run naked over a noisy channel ([`beeps_channel::run_protocol`]) to
//!   watch it break, and
//! * simulated noise-resiliently by the coding schemes in `beeps-core`.
//!
//! # Examples
//!
//! ```
//! use beeps_channel::run_noiseless;
//! use beeps_protocols::InputSet;
//! use std::collections::BTreeSet;
//!
//! let p = InputSet::new(4); // 4 parties, inputs in [8]
//! let exec = run_noiseless(&p, &[3, 5, 3, 0]);
//! let expect: BTreeSet<usize> = [0, 3, 5].into_iter().collect();
//! assert_eq!(exec.outputs()[0], expect);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod broadcast;
pub mod census;
pub mod combinators;
pub mod firefly;
pub mod input_set;
pub mod leader;
pub mod membership;
pub mod multi_or;
pub mod pointer_chase;
pub mod roll_call;

pub use broadcast::Broadcast;
pub use census::Census;
pub use firefly::FireflySync;
pub use input_set::{InputSet, RepeatedInputSet};
pub use leader::LeaderElection;
pub use membership::Membership;
pub use multi_or::MultiOr;
pub use pointer_chase::PointerChase;
pub use roll_call::RollCall;
