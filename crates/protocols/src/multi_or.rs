//! The unrestricted form of the lower-bound task (subsection 2.2): every
//! party holds a bit for every round, and the parties must compute the
//! round-wise OR.

use beeps_channel::{EnumerableInputs, Protocol};

/// `MultiOr`: party `i` holds bits `b^i_1 ⋯ b^i_T`; the goal is the vector
/// `π_m = ⋁_i b^i_m` for all `m`.
///
/// Subsection 2.2 of the paper introduces this as the transcript-
/// computation task from which `InputSet_n` is carved out (by the promise
/// that each party's bit vector is an indicator of a single position).
/// The trivial noiseless protocol beeps `b^i_m` in round `m`.
///
/// # Examples
///
/// ```
/// use beeps_channel::run_noiseless;
/// use beeps_protocols::MultiOr;
///
/// let p = MultiOr::new(2, 3);
/// let exec = run_noiseless(&p, &[vec![true, false, false], vec![false, false, true]]);
/// assert_eq!(exec.outputs()[0], vec![true, false, true]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiOr {
    n: usize,
    t: usize,
}

impl MultiOr {
    /// The task for `n` parties over `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `rounds == 0`.
    pub fn new(n: usize, rounds: usize) -> Self {
        assert!(n > 0, "need at least one party");
        assert!(rounds > 0, "need at least one round");
        Self { n, t: rounds }
    }
}

impl Protocol for MultiOr {
    type Input = Vec<bool>;
    type Output = Vec<bool>;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        self.t
    }

    fn beep(&self, _party: usize, input: &Vec<bool>, transcript: &[bool]) -> bool {
        assert_eq!(input.len(), self.t, "input must have one bit per round");
        input[transcript.len()]
    }

    fn output(&self, _party: usize, _input: &Vec<bool>, transcript: &[bool]) -> Vec<bool> {
        transcript.to_vec()
    }
}

impl EnumerableInputs for MultiOr {
    /// All `2^T` bit vectors; only sensible for small `rounds` (≤ 16).
    fn input_domain(&self, _party: usize) -> Vec<Vec<bool>> {
        assert!(
            self.t <= 16,
            "enumerating 2^{} inputs is unreasonable",
            self.t
        );
        (0..(1usize << self.t))
            .map(|mask| (0..self.t).map(|b| (mask >> b) & 1 == 1).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::run_noiseless;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn computes_roundwise_or() {
        let p = MultiOr::new(3, 4);
        let inputs = vec![
            vec![true, false, false, false],
            vec![true, true, false, false],
            vec![false, false, false, true],
        ];
        let exec = run_noiseless(&p, &inputs);
        assert_eq!(exec.outputs()[0], vec![true, true, false, true]);
    }

    #[test]
    fn random_or_matches_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let n = rng.gen_range(1..8);
            let t = rng.gen_range(1..12);
            let p = MultiOr::new(n, t);
            let inputs: Vec<Vec<bool>> = (0..n)
                .map(|_| (0..t).map(|_| rng.gen_bool(0.3)).collect())
                .collect();
            let expect: Vec<bool> = (0..t)
                .map(|m| inputs.iter().any(|input| input[m]))
                .collect();
            assert_eq!(run_noiseless(&p, &inputs).outputs()[0], expect);
        }
    }

    #[test]
    fn domain_size_is_two_to_t() {
        assert_eq!(MultiOr::new(2, 5).input_domain(0).len(), 32);
    }

    #[test]
    #[should_panic(expected = "one bit per round")]
    fn wrong_input_length_panics() {
        let p = MultiOr::new(1, 3);
        run_noiseless(&p, &[vec![true]]);
    }
}
