//! The `InputSet_n` communication task (Appendix A.2) — the workload the
//! paper's Ω(log n) lower bound is proved against.

use beeps_channel::{EnumerableInputs, Protocol};
use std::collections::BTreeSet;

/// `InputSet_n`: each of `n` parties holds a number `x^i ∈ [2n]`
/// (represented 0-based as `0..2n`); all parties must output the set
/// `L(x) = { x^i : i ∈ [n] }`.
///
/// The trivial noiseless protocol has `2n` rounds: in round `m`, party `i`
/// beeps iff `x^i = m`, so `π_m = 1 ⟺ m ∈ L(x)` and every party reads the
/// answer off the transcript. Under `ε`-noise that protocol's output is
/// wrong with probability `1 − (1−ε)^{2n} → 1`, and Theorem C.1 shows *any*
/// protocol needs `Ω(n log n)` rounds — an `Ω(log n)` blow-up.
///
/// # Examples
///
/// ```
/// use beeps_channel::run_noiseless;
/// use beeps_protocols::InputSet;
///
/// let p = InputSet::new(3);
/// let exec = run_noiseless(&p, &[2, 2, 4]);
/// assert!(exec.outputs()[0].contains(&2) && exec.outputs()[0].contains(&4));
/// assert_eq!(exec.outputs()[0].len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputSet {
    n: usize,
}

impl InputSet {
    /// The task for `n` parties (inputs range over `0..2n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one party");
        Self { n }
    }

    /// Size of every party's input domain, `2n`.
    pub fn domain_size(&self) -> usize {
        2 * self.n
    }

    /// The correct answer `L(x)` for an input vector.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n` or an input is out of range.
    pub fn answer(&self, inputs: &[usize]) -> BTreeSet<usize> {
        assert_eq!(inputs.len(), self.n, "need one input per party");
        inputs
            .iter()
            .map(|&x| {
                assert!(x < self.domain_size(), "input {x} outside [2n]");
                x
            })
            .collect()
    }
}

impl Protocol for InputSet {
    type Input = usize;
    type Output = BTreeSet<usize>;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        2 * self.n
    }

    fn beep(&self, _party: usize, input: &usize, transcript: &[bool]) -> bool {
        *input == transcript.len()
    }

    fn output(&self, _party: usize, _input: &usize, transcript: &[bool]) -> BTreeSet<usize> {
        transcript
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(m, _)| m)
            .collect()
    }
}

impl EnumerableInputs for InputSet {
    fn input_domain(&self, _party: usize) -> Vec<usize> {
        (0..self.domain_size()).collect()
    }
}

/// The repetition-coded trivial protocol for `InputSet_n`: round block
/// `m` (of `r` channel rounds) carries the indicator `x^i = m`, and the
/// output decodes each block by a threshold count.
///
/// This is footnote 1's scheme specialized to the paper's task, expressed
/// as a plain noiseless-model [`Protocol`] of length `2n·r` so that the
/// lower-bound machinery (which needs an enumerable input domain) can
/// analyze protocols of *growing length* — the knob experiment E5 turns.
///
/// # Examples
///
/// ```
/// use beeps_channel::{run_noiseless, Protocol};
/// use beeps_protocols::RepeatedInputSet;
///
/// let p = RepeatedInputSet::new(3, 4, 3); // r = 4, decode needs 3 ones
/// assert_eq!(p.length(), 24);
/// let exec = run_noiseless(&p, &[1, 5, 1]);
/// assert!(exec.outputs()[0].contains(&1) && exec.outputs()[0].contains(&5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepeatedInputSet {
    n: usize,
    repetitions: usize,
    threshold_ones: usize,
}

impl RepeatedInputSet {
    /// `n` parties, each indicator repeated `repetitions` times, decoded
    /// as 1 when at least `threshold_ones` copies read 1.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `repetitions == 0`, or
    /// `threshold_ones` is not in `1..=repetitions`.
    pub fn new(n: usize, repetitions: usize, threshold_ones: usize) -> Self {
        assert!(n > 0, "need at least one party");
        assert!(repetitions > 0, "need at least one repetition");
        assert!(
            (1..=repetitions).contains(&threshold_ones),
            "threshold must be within 1..=repetitions"
        );
        Self {
            n,
            repetitions,
            threshold_ones,
        }
    }

    /// The per-round repetition count `r`.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }
}

impl Protocol for RepeatedInputSet {
    type Input = usize;
    type Output = BTreeSet<usize>;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        2 * self.n * self.repetitions
    }

    fn beep(&self, _party: usize, input: &usize, transcript: &[bool]) -> bool {
        transcript.len() / self.repetitions == *input
    }

    fn output(&self, _party: usize, _input: &usize, transcript: &[bool]) -> BTreeSet<usize> {
        transcript
            .chunks(self.repetitions)
            .enumerate()
            .filter(|(_, block)| block.iter().filter(|&&b| b).count() >= self.threshold_ones)
            .map(|(m, _)| m)
            .collect()
    }
}

impl EnumerableInputs for RepeatedInputSet {
    fn input_domain(&self, _party: usize) -> Vec<usize> {
        (0..2 * self.n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::{run_noiseless, run_protocol, NoiseModel};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn noiseless_execution_computes_the_set() {
        let p = InputSet::new(5);
        let inputs = [0, 9, 3, 3, 7];
        let exec = run_noiseless(&p, &inputs);
        let expect = p.answer(&inputs);
        for out in exec.outputs() {
            assert_eq!(out, &expect);
        }
        // Transcript is the indicator vector of the set.
        for (m, &bit) in exec.transcript().iter().enumerate() {
            assert_eq!(bit, expect.contains(&m));
        }
    }

    #[test]
    fn all_same_input_yields_singleton() {
        let p = InputSet::new(4);
        let exec = run_noiseless(&p, &[6; 4]);
        assert_eq!(exec.outputs()[0].len(), 1);
    }

    #[test]
    fn random_instances_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x15);
        for _ in 0..50 {
            let n = rng.gen_range(1..20);
            let p = InputSet::new(n);
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            let exec = run_noiseless(&p, &inputs);
            assert_eq!(exec.outputs()[0], p.answer(&inputs));
        }
    }

    #[test]
    fn naked_protocol_breaks_under_noise() {
        // The headline motivation: the trivial 2n-round protocol fails with
        // probability -> 1 under constant noise.
        let n = 32;
        let p = InputSet::new(n);
        let mut rng = StdRng::seed_from_u64(7);
        let mut wrong = 0;
        let trials = 100;
        for t in 0..trials {
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            let exec = run_protocol(
                &p,
                &inputs,
                NoiseModel::Correlated { epsilon: 1.0 / 3.0 },
                t as u64,
            );
            if exec.outputs()[0] != p.answer(&inputs) {
                wrong += 1;
            }
        }
        assert!(wrong > trials * 9 / 10, "only {wrong}/{trials} failed");
    }

    #[test]
    fn domain_enumerates_2n_values() {
        let p = InputSet::new(6);
        assert_eq!(p.input_domain(0).len(), 12);
    }

    #[test]
    #[should_panic(expected = "outside [2n]")]
    fn answer_rejects_out_of_range() {
        InputSet::new(2).answer(&[4, 0]);
    }

    #[test]
    fn repeated_variant_matches_plain_variant_noiselessly() {
        let mut rng = StdRng::seed_from_u64(0x21);
        for _ in 0..20 {
            let n = rng.gen_range(1..8);
            let r = rng.gen_range(1..5);
            let plain = InputSet::new(n);
            let repeated = RepeatedInputSet::new(n, r, r / 2 + 1);
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            assert_eq!(
                run_noiseless(&plain, &inputs).outputs()[0],
                run_noiseless(&repeated, &inputs).outputs()[0],
            );
        }
    }

    #[test]
    fn repeated_variant_survives_noise_that_kills_the_plain_one() {
        let n = 8;
        let eps = 1.0 / 3.0;
        let model = NoiseModel::OneSidedZeroToOne { epsilon: eps };
        // Threshold for one-sided up-noise: ceil(r (1+eps)/2).
        let r = 24;
        let thr = ((r as f64) * (1.0 + eps) / 2.0).ceil() as usize;
        let repeated = RepeatedInputSet::new(n, r, thr);
        let mut rng = StdRng::seed_from_u64(0x22);
        let mut good = 0;
        let trials = 30;
        for seed in 0..trials {
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            let expect = InputSet::new(n).answer(&inputs);
            let out = run_protocol(&repeated, &inputs, model, seed);
            if out.outputs()[0] == expect {
                good += 1;
            }
        }
        assert!(good >= trials - 2, "only {good}/{trials} survived");
    }

    #[test]
    #[should_panic(expected = "threshold must be within")]
    fn repeated_variant_rejects_bad_threshold() {
        RepeatedInputSet::new(2, 3, 4);
    }
}
