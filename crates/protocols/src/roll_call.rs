//! Roll call: the simplest *non-adaptive, uniquely-owned* protocol —
//! round `i` belongs to party `i`, the turn structure \[EKS18\] assumes
//! (subsection 2.1 of the paper: "each party 'owns' a disjoint set of
//! bits in the transcript").

use beeps_channel::{EnumerableInputs, Protocol, UniquelyOwned};

/// `RollCall`: party `i` beeps in round `i` iff its attendance bit is
/// set; everyone outputs the attendance count (and the transcript is the
/// full attendance vector).
///
/// Because every round has exactly one legal speaker, this is the workload
/// where the paper's owners machinery is *unnecessary* — a mismatch in
/// round `i` is detectable by party `i` alone, as in \[EKS18\] — making it
/// the natural baseline against the `InputSet` task, where ownership must
/// be computed.
///
/// # Examples
///
/// ```
/// use beeps_channel::run_noiseless;
/// use beeps_protocols::RollCall;
///
/// let p = RollCall::new(4);
/// let exec = run_noiseless(&p, &[true, false, true, true]);
/// assert_eq!(exec.outputs(), &[3, 3, 3, 3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollCall {
    n: usize,
}

impl RollCall {
    /// A roll call among `n` parties (one round each).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one party");
        Self { n }
    }
}

impl Protocol for RollCall {
    type Input = bool;
    type Output = usize;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        self.n
    }

    fn beep(&self, party: usize, input: &bool, transcript: &[bool]) -> bool {
        *input && transcript.len() == party
    }

    fn output(&self, _party: usize, _input: &bool, transcript: &[bool]) -> usize {
        transcript.iter().filter(|&&b| b).count()
    }
}

impl UniquelyOwned for RollCall {
    fn round_owner(&self, m: usize) -> usize {
        m
    }
}

impl EnumerableInputs for RollCall {
    fn input_domain(&self, _party: usize) -> Vec<bool> {
        vec![false, true]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::{run_noiseless, run_protocol, NoiseModel};

    #[test]
    fn counts_attendance() {
        let p = RollCall::new(5);
        let exec = run_noiseless(&p, &[true, true, false, false, true]);
        assert_eq!(exec.outputs()[0], 3);
        assert_eq!(exec.transcript(), &[true, true, false, false, true]);
    }

    #[test]
    fn empty_roll_call_is_silent() {
        let p = RollCall::new(3);
        let exec = run_noiseless(&p, &[false, false, false]);
        assert_eq!(exec.outputs()[0], 0);
    }

    #[test]
    fn noise_miscounts() {
        let p = RollCall::new(16);
        let inputs = vec![false; 16];
        let mut wrong = 0;
        for seed in 0..30 {
            let out = run_protocol(
                &p,
                &inputs,
                NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 },
                seed,
            );
            if out.outputs()[0] != 0 {
                wrong += 1;
            }
        }
        assert!(wrong >= 29, "phantom attendees should appear almost always");
    }

    #[test]
    fn each_round_has_a_unique_possible_speaker() {
        let p = RollCall::new(4);
        for round in 0..4 {
            let transcript = vec![false; round];
            for party in 0..4 {
                let can_beep = p.beep(party, &true, &transcript);
                assert_eq!(can_beep, party == round);
            }
        }
    }
}
