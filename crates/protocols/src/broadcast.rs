//! Single-speaker broadcast — the workload of the noisy-broadcast line of
//! work (\[EKS18\] and its predecessors) that §1.3 of the paper contrasts
//! the beeping model with.

use beeps_channel::{EnumerableInputs, Protocol, UniquelyOwned};

/// `Broadcast`: one designated speaker holds a `width`-bit message; after
/// `width` rounds every party outputs it.
///
/// Over the noiseless channel the speaker beeps its message bit-by-bit
/// (everyone else stays silent), so the transcript *is* the message. The
/// protocol is non-adaptive and every round is "owned" by the speaker —
/// the structural property \[EKS18\]'s verification relies on, which makes
/// this the cleanest workload for exercising the owners phase: every
/// 1-round has exactly one legal owner.
///
/// Non-speakers' inputs are ignored (use 0).
///
/// # Examples
///
/// ```
/// use beeps_channel::run_noiseless;
/// use beeps_protocols::Broadcast;
///
/// let p = Broadcast::new(3, 0, 4);
/// let exec = run_noiseless(&p, &[0b1011, 0, 0]);
/// assert_eq!(exec.outputs(), &[0b1011, 0b1011, 0b1011]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Broadcast {
    n: usize,
    speaker: usize,
    width: usize,
}

impl Broadcast {
    /// A broadcast among `n` parties where `speaker` transmits a
    /// `width`-bit message.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `speaker >= n`, or `width` is 0 or above 32.
    pub fn new(n: usize, speaker: usize, width: usize) -> Self {
        assert!(n > 0, "need at least one party");
        assert!(speaker < n, "speaker index out of range");
        assert!((1..=32).contains(&width), "message width must be 1..=32");
        Self { n, speaker, width }
    }

    /// The speaking party.
    pub fn speaker(&self) -> usize {
        self.speaker
    }
}

impl Protocol for Broadcast {
    type Input = usize;
    type Output = usize;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        self.width
    }

    fn beep(&self, party: usize, input: &usize, transcript: &[bool]) -> bool {
        if party != self.speaker {
            return false;
        }
        assert!(
            *input < (1usize << self.width),
            "message {input} exceeds {} bits",
            self.width
        );
        (input >> (self.width - 1 - transcript.len())) & 1 == 1
    }

    fn output(&self, _party: usize, _input: &usize, transcript: &[bool]) -> usize {
        transcript
            .iter()
            .fold(0usize, |acc, &b| (acc << 1) | usize::from(b))
    }
}

impl UniquelyOwned for Broadcast {
    fn round_owner(&self, _m: usize) -> usize {
        self.speaker
    }
}

impl EnumerableInputs for Broadcast {
    fn input_domain(&self, party: usize) -> Vec<usize> {
        if party == self.speaker {
            assert!(
                self.width <= 16,
                "enumerating 2^{} messages is unreasonable",
                self.width
            );
            (0..(1usize << self.width)).collect()
        } else {
            vec![0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::{run_noiseless, run_protocol, NoiseModel};

    #[test]
    fn message_arrives_verbatim() {
        let p = Broadcast::new(4, 2, 8);
        let exec = run_noiseless(&p, &[0, 0, 0xA5, 0]);
        assert!(exec.outputs().iter().all(|&m| m == 0xA5));
    }

    #[test]
    fn non_speakers_stay_silent() {
        let p = Broadcast::new(3, 1, 4);
        // Speaker message 0 -> all-silent transcript.
        let exec = run_noiseless(&p, &[9, 0, 9]);
        assert!(exec.transcript().iter().all(|&b| !b));
    }

    #[test]
    fn one_sided_down_noise_erases_message_bits() {
        let p = Broadcast::new(2, 0, 16);
        let mut corrupted = 0;
        for seed in 0..30 {
            let out = run_protocol(
                &p,
                &[0xFFFF, 0],
                NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 },
                seed,
            );
            if out.outputs()[1] != 0xFFFF {
                corrupted += 1;
            }
        }
        assert!(
            corrupted >= 29,
            "an all-ones message should almost never survive"
        );
    }

    #[test]
    fn domain_is_singleton_for_listeners() {
        let p = Broadcast::new(3, 0, 4);
        assert_eq!(p.input_domain(0).len(), 16);
        assert_eq!(p.input_domain(1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "speaker index")]
    fn speaker_out_of_range_rejected() {
        Broadcast::new(2, 2, 4);
    }
}
