//! Randomized network-size estimation by geometric beeping — the
//! single-hop counterpart of the size-approximation protocols the paper
//! cites (Brandes–Kardas–Klonowski–Pajak–Wattenhofer).

use beeps_channel::Protocol;
use rand::Rng;

/// `Census`: estimate the number of participating parties within a
/// constant factor.
///
/// The protocol has `phases` rounds. In round `j` each party beeps with
/// probability `2^{-(j+1)}`; the estimate is `2^{j*+1}` where `j*` is the
/// first silent round (or `2^phases` if none is silent). With `n` parties,
/// rounds with `2^{j+1} ≪ n` are almost surely noisy and rounds with
/// `2^{j+1} ≫ n` almost surely silent, so the estimate lands within a
/// constant factor of `n` with constant probability.
///
/// Randomized protocols are distributions over deterministic ones
/// (Appendix A.1.1), so the coin flips are part of the *input*: each
/// party's input is its pre-sampled beep schedule, produced by
/// [`Census::sample_input`].
///
/// # Examples
///
/// ```
/// use beeps_channel::run_noiseless;
/// use beeps_protocols::Census;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let n = 64;
/// let p = Census::new(n, 12);
/// let mut rng = StdRng::seed_from_u64(1);
/// let inputs: Vec<_> = (0..n).map(|_| p.sample_input(&mut rng)).collect();
/// let estimate = run_noiseless(&p, &inputs).outputs()[0];
/// assert!(estimate >= 8 && estimate <= 1024, "estimate {estimate}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Census {
    n: usize,
    phases: usize,
}

impl Census {
    /// A census among `n` parties probing `phases` geometric levels
    /// (resolving sizes up to `2^phases`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `phases` is 0 or exceeds 48.
    pub fn new(n: usize, phases: usize) -> Self {
        assert!(n > 0, "need at least one party");
        assert!((1..=48).contains(&phases), "phases must be 1..=48");
        Self { n, phases }
    }

    /// Samples one party's beep schedule: entry `j` is a coin with heads
    /// probability `2^{-(j+1)}`.
    pub fn sample_input<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<bool> {
        (0..self.phases)
            .map(|j| rng.gen_bool(0.5f64.powi(j as i32 + 1)))
            .collect()
    }
}

impl Protocol for Census {
    type Input = Vec<bool>;
    type Output = usize;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        self.phases
    }

    fn beep(&self, _party: usize, input: &Vec<bool>, transcript: &[bool]) -> bool {
        assert_eq!(input.len(), self.phases, "schedule must cover all phases");
        input[transcript.len()]
    }

    fn output(&self, _party: usize, _input: &Vec<bool>, transcript: &[bool]) -> usize {
        match transcript.iter().position(|&b| !b) {
            Some(j) => 1usize << (j + 1),
            None => 1usize << self.phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::{run_noiseless, run_protocol, NoiseModel};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn estimate_is_constant_factor_most_of_the_time() {
        let n = 128;
        let p = Census::new(n, 14);
        let mut rng = StdRng::seed_from_u64(0xCE);
        let mut good = 0;
        let trials = 200;
        for _ in 0..trials {
            let inputs: Vec<_> = (0..n).map(|_| p.sample_input(&mut rng)).collect();
            let est = run_noiseless(&p, &inputs).outputs()[0] as f64;
            if est >= n as f64 / 16.0 && est <= n as f64 * 16.0 {
                good += 1;
            }
        }
        assert!(
            good >= trials * 7 / 10,
            "only {good}/{trials} within a factor of 16"
        );
    }

    #[test]
    fn single_party_estimates_small() {
        let p = Census::new(1, 10);
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = 0usize;
        for _ in 0..50 {
            let inputs = vec![p.sample_input(&mut rng)];
            total += run_noiseless(&p, &inputs).outputs()[0];
        }
        // Average estimate for one party should be small.
        assert!(total / 50 <= 16, "average estimate {}", total / 50);
    }

    #[test]
    fn all_silent_schedule_estimates_two() {
        let p = Census::new(4, 8);
        let inputs = vec![vec![false; 8]; 4];
        assert_eq!(run_noiseless(&p, &inputs).outputs()[0], 2);
    }

    #[test]
    fn all_beeping_schedule_saturates() {
        let p = Census::new(2, 6);
        let inputs = vec![vec![true; 6]; 2];
        assert_eq!(run_noiseless(&p, &inputs).outputs()[0], 64);
    }

    #[test]
    fn one_sided_noise_inflates_estimates() {
        // 0->1 noise keeps "busy" rounds going, inflating the estimate —
        // the motivating failure for noise-resilient census.
        let n = 4;
        let p = Census::new(n, 20);
        let mut rng = StdRng::seed_from_u64(0xAB);
        let mut inflated = 0;
        let trials = 60;
        for t in 0..trials {
            let inputs: Vec<_> = (0..n).map(|_| p.sample_input(&mut rng)).collect();
            let clean = run_noiseless(&p, &inputs).outputs()[0];
            let noisy = run_protocol(
                &p,
                &inputs,
                NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 },
                t as u64,
            )
            .outputs()[0];
            if noisy > clean {
                inflated += 1;
            }
        }
        // The estimate inflates at least when the first silent round flips
        // (probability 1/3), so a quarter of trials is a safe floor.
        assert!(inflated > trials / 4, "inflated only {inflated}/{trials}");
    }
}
