//! Pointer chasing over the beeping channel — the paper's candidate
//! (§1.2) for separating independent from correlated noise, and the most
//! *sequential* workload in the library: every phase depends on the
//! previous phase's announced value, so no part of the transcript can be
//! anticipated.

use beeps_channel::{EnumerableInputs, Protocol, UniquelyOwned};

/// `PointerChase`: each party holds a pointer table `f_i : [w] → [w]`;
/// starting from pointer 0, phase `t` has party `t mod n` announce
/// `f_{t mod n}(p_t)` bit-by-bit (`⌈log₂ w⌉` rounds, MSB first), and
/// `p_{t+1}` is the announced value. All parties output the final pointer.
///
/// The beep decision in any round requires replaying the entire chase so
/// far from the transcript, which makes this protocol maximally adaptive
/// and strictly sequential — a stress test for chunked simulation, where
/// a single corrupted phase derails everything after it.
///
/// # Examples
///
/// ```
/// use beeps_channel::run_noiseless;
/// use beeps_protocols::PointerChase;
///
/// // Two parties, width 4, chase depth 3.
/// let p = PointerChase::new(2, 4, 3);
/// let tables = vec![vec![2, 0, 3, 1], vec![1, 3, 0, 2]];
/// // p0=0 -> f_0(0)=2 -> f_1(2)=0 -> f_0(0)=2.
/// let exec = run_noiseless(&p, &tables);
/// assert_eq!(exec.outputs(), &[2, 2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerChase {
    n: usize,
    width: usize,
    bits: usize,
    depth: usize,
}

impl PointerChase {
    /// A chase among `n` parties over pointer domain `0..width` for
    /// `depth` phases.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `width` is not a power of two in `2..=256`, or
    /// `depth == 0`.
    pub fn new(n: usize, width: usize, depth: usize) -> Self {
        assert!(n > 0, "need at least one party");
        assert!(
            width.is_power_of_two() && (2..=256).contains(&width),
            "pointer domain must be a power of two in 2..=256"
        );
        assert!(depth > 0, "need at least one phase");
        let bits = width.trailing_zeros() as usize;
        Self {
            n,
            width,
            bits,
            depth,
        }
    }

    /// Replays the chase up to (not including) the phase containing the
    /// next round, returning `(current_pointer, phase, bit_in_phase)`.
    fn replay(&self, transcript: &[bool]) -> (usize, usize, usize) {
        let phase = transcript.len() / self.bits;
        let bit = transcript.len() % self.bits;
        let mut pointer = 0usize;
        for t in 0..phase {
            let mut value = 0usize;
            for b in 0..self.bits {
                value = (value << 1) | usize::from(transcript[t * self.bits + b]);
            }
            pointer = value;
        }
        (pointer, phase, bit)
    }
}

impl Protocol for PointerChase {
    type Input = Vec<usize>;
    type Output = usize;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        self.depth * self.bits
    }

    fn beep(&self, party: usize, input: &Vec<usize>, transcript: &[bool]) -> bool {
        assert_eq!(input.len(), self.width, "pointer table must cover [w]");
        let (pointer, phase, bit) = self.replay(transcript);
        if phase % self.n != party {
            return false;
        }
        let value = input[pointer];
        assert!(value < self.width, "pointer table entry out of range");
        (value >> (self.bits - 1 - bit)) & 1 == 1
    }

    fn output(&self, _party: usize, _input: &Vec<usize>, transcript: &[bool]) -> usize {
        let (pointer, _, _) = self.replay(&transcript[..self.depth * self.bits]);
        pointer
    }
}

impl UniquelyOwned for PointerChase {
    fn round_owner(&self, m: usize) -> usize {
        (m / self.bits) % self.n
    }
}

impl EnumerableInputs for PointerChase {
    /// All `w^w` pointer tables — only tractable for `width ≤ 4`; larger
    /// widths panic rather than explode.
    fn input_domain(&self, _party: usize) -> Vec<Vec<usize>> {
        assert!(
            self.width <= 4,
            "enumerating {}^{} pointer tables is unreasonable",
            self.width,
            self.width
        );
        let mut domain = Vec::new();
        let count = self.width.pow(self.width as u32);
        for mut id in 0..count {
            let mut table = Vec::with_capacity(self.width);
            for _ in 0..self.width {
                table.push(id % self.width);
                id /= self.width;
            }
            domain.push(table);
        }
        domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::{run_noiseless, run_protocol, NoiseModel};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Reference chase, straight from the tables.
    fn chase(tables: &[Vec<usize>], depth: usize) -> usize {
        let mut p = 0usize;
        for t in 0..depth {
            p = tables[t % tables.len()][p];
        }
        p
    }

    #[test]
    fn random_chases_match_reference() {
        let mut rng = StdRng::seed_from_u64(0xC4A5E);
        for _ in 0..30 {
            let n = rng.gen_range(1..5);
            let width = 1usize << rng.gen_range(1..5);
            let depth = rng.gen_range(1..10);
            let p = PointerChase::new(n, width, depth);
            let tables: Vec<Vec<usize>> = (0..n)
                .map(|_| (0..width).map(|_| rng.gen_range(0..width)).collect())
                .collect();
            let exec = run_noiseless(&p, &tables);
            assert_eq!(exec.outputs()[0], chase(&tables, depth));
        }
    }

    #[test]
    fn identity_tables_stay_at_zero() {
        let p = PointerChase::new(3, 8, 6);
        let identity: Vec<usize> = (0..8).collect();
        let exec = run_noiseless(&p, &[identity.clone(), identity.clone(), identity]);
        assert_eq!(exec.outputs()[0], 0);
        assert!(exec.transcript().iter().all(|&b| !b));
    }

    #[test]
    fn single_corruption_derails_the_whole_chase() {
        // Sequentiality: flipping one early bit usually changes the final
        // pointer — the property that makes this protocol hard to protect
        // piecemeal.
        let p = PointerChase::new(2, 16, 8);
        let mut rng = StdRng::seed_from_u64(0xDE7A11);
        let tables: Vec<Vec<usize>> = (0..2)
            .map(|_| (0..16).map(|_| rng.gen_range(0..16)).collect())
            .collect();
        let clean = run_noiseless(&p, &tables).outputs()[0];
        let mut derailed = 0;
        for seed in 0..40 {
            let out = run_protocol(&p, &tables, NoiseModel::Correlated { epsilon: 0.1 }, seed);
            if out.outputs()[0] != clean {
                derailed += 1;
            }
        }
        assert!(derailed > 20, "only {derailed}/40 runs derailed");
    }

    #[test]
    fn domain_enumeration_small_width() {
        let p = PointerChase::new(2, 2, 2);
        assert_eq!(p.input_domain(0).len(), 4); // 2^2 tables
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_width_rejected() {
        PointerChase::new(2, 6, 2);
    }
}
