//! Firefly-style phase synchronization — the biological motivation of the
//! beeping model (fireflies reacting to flashes; cf. the paper's
//! introduction and Afek–Alon–Barad–Hornstein–Barkai–Bar-Joseph).

use beeps_channel::Protocol;

/// `FireflySync`: parties with arbitrary phase offsets converge to beeping
/// in unison.
///
/// Each party has an offset in `0..period` and initially intends to beep
/// whenever `(round − offset) ≡ 0 (mod period)`. The synchronization rule
/// is *adopt the last flash*: once any beep is heard, a party re-anchors
/// its phase to that round. Over the shared (noiseless) channel everyone
/// hears the same first flash, so the network is fully synchronized after
/// at most `period` rounds and flashes together every `period` rounds
/// thereafter.
///
/// Under noise the flashes wander: a fabricated beep re-anchors everyone,
/// an erased beep splits nothing (the channel is still shared) but delays
/// convergence checks — which is precisely why a noise-resilient simulation
/// is interesting for this workload.
///
/// The output is the synchronized phase: the last heard flash round mod
/// `period` (or the party's own offset if no flash was ever heard, which
/// cannot happen noiselessly).
///
/// # Examples
///
/// ```
/// use beeps_channel::run_noiseless;
/// use beeps_protocols::FireflySync;
///
/// let p = FireflySync::new(3, 8);
/// let exec = run_noiseless(&p, &[5, 2, 7]);
/// // Everyone adopts the earliest flash (offset 2).
/// assert!(exec.outputs().iter().all(|&phase| phase == 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FireflySync {
    n: usize,
    period: usize,
}

impl FireflySync {
    /// A synchronization instance for `n` parties with the given flash
    /// `period`; runs for `2 · period` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `period == 0`.
    pub fn new(n: usize, period: usize) -> Self {
        assert!(n > 0, "need at least one party");
        assert!(period > 0, "period must be positive");
        Self { n, period }
    }

    /// The flash period.
    pub fn period(&self) -> usize {
        self.period
    }

    fn last_flash(transcript: &[bool]) -> Option<usize> {
        transcript.iter().rposition(|&b| b)
    }
}

impl Protocol for FireflySync {
    type Input = usize;
    type Output = usize;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        2 * self.period
    }

    fn beep(&self, _party: usize, input: &usize, transcript: &[bool]) -> bool {
        assert!(*input < self.period, "offset {input} outside period");
        let round = transcript.len();
        match Self::last_flash(transcript) {
            // Re-anchored: flash exactly `period` after the last heard one.
            Some(anchor) => (round - anchor).is_multiple_of(self.period),
            // Free-running on our own offset.
            None => round % self.period == *input % self.period,
        }
    }

    fn output(&self, _party: usize, input: &usize, transcript: &[bool]) -> usize {
        match Self::last_flash(transcript) {
            Some(anchor) => anchor % self.period,
            None => *input,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeps_channel::{run_noiseless, run_protocol, NoiseModel, PartyViews};

    #[test]
    fn synchronizes_to_earliest_offset() {
        let p = FireflySync::new(4, 10);
        let exec = run_noiseless(&p, &[9, 4, 6, 8]);
        assert!(exec.outputs().iter().all(|&phase| phase == 4));
    }

    #[test]
    fn flashes_are_periodic_after_sync() {
        let p = FireflySync::new(3, 5);
        let exec = run_noiseless(&p, &[3, 3, 4]);
        let t = exec.transcript();
        // First flash at round 3, then every 5 rounds: 3, 8.
        let flashes: Vec<usize> = t
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(flashes, vec![3, 8]);
    }

    #[test]
    fn offset_zero_flashes_immediately() {
        let p = FireflySync::new(2, 4);
        let exec = run_noiseless(&p, &[0, 3]);
        assert!(exec.transcript()[0]);
        assert_eq!(exec.outputs(), &[0, 0]);
    }

    #[test]
    fn already_synchronized_network_stays_synchronized() {
        let p = FireflySync::new(5, 6);
        let exec = run_noiseless(&p, &[2; 5]);
        assert!(exec.outputs().iter().all(|&phase| phase == 2));
        assert_eq!(exec.transcript().iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn correlated_noise_keeps_agreement_but_moves_phase() {
        // The correlated channel keeps all parties agreeing on the phase
        // (shared transcript) even when noise shifts it.
        let p = FireflySync::new(4, 8);
        for seed in 0..20 {
            let exec = run_protocol(
                &p,
                &[1, 5, 6, 2],
                NoiseModel::Correlated { epsilon: 0.2 },
                seed,
            );
            let first = exec.outputs()[0];
            assert!(exec.outputs().iter().all(|&o| o == first));
        }
    }

    #[test]
    fn independent_noise_can_break_agreement() {
        let p = FireflySync::new(16, 16);
        let inputs: Vec<usize> = (0..16).collect();
        let mut disagreements = 0;
        for seed in 0..30 {
            let exec = run_protocol(&p, &inputs, NoiseModel::Independent { epsilon: 0.25 }, seed);
            if let PartyViews::PerParty(_) = exec.views() {
                let first = exec.outputs()[0];
                if exec.outputs().iter().any(|&o| o != first) {
                    disagreements += 1;
                }
            }
        }
        assert!(disagreements > 0, "independent noise should desynchronize");
    }
}
