//! Observation glue for the experiment binaries and the `beeps` CLI:
//! turns `--progress` / `--profile <path>` / `BEEPS_PROGRESS` into an
//! attached observer stack.
//!
//! One [`Observation`] bundles the three production observers from
//! `beeps-observe`:
//!
//! * a `ProgressTracker` + stderr reporter thread (`--progress`, or the
//!   `BEEPS_PROGRESS` environment variable set to anything but `0`);
//! * a `PhaseProfiler` exporting Chrome trace-event JSON to the
//!   `--profile <path>` argument (loadable in `chrome://tracing`,
//!   speedscope, or Perfetto) plus a summary table on stdout;
//! * a `RunLog` JSONL file written alongside the experiment log
//!   (`<output_dir>/<id>.runlog.jsonl`) whenever any observation is
//!   active.
//!
//! With none of the flags present, [`Observation::attach`] returns the
//! runner untouched and the run takes the exact pre-observability code
//! path.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use beeps_metrics::MetricsRegistry;
use beeps_observe::{
    config_digest, MultiObserver, Observer, PhaseProfiler, ProgressReporter, ProgressTracker,
    RunLog, RunMeta, RunSummary,
};

use crate::json::ExperimentLog;
use crate::runner::TrialRunner;

/// The observation-related CLI flags, parsed but not yet acted on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Options {
    progress: bool,
    profile: Option<PathBuf>,
}

impl Options {
    /// Extracts `--progress` and `--profile <path>` / `--profile=path`
    /// from `args`, ignoring everything else (the binaries pass their
    /// full argument list through). `BEEPS_PROGRESS` set to anything
    /// but `0` or the empty string also enables progress.
    fn parse<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut opts = Self::default();
        if let Ok(v) = std::env::var("BEEPS_PROGRESS") {
            opts.progress = !v.is_empty() && v != "0";
        }
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            if arg == "--progress" {
                opts.progress = true;
            } else if arg == "--profile" {
                let value = args.next().expect("--profile requires a path");
                opts.profile = Some(PathBuf::from(value.as_ref()));
            } else if let Some(v) = arg.strip_prefix("--profile=") {
                opts.profile = Some(PathBuf::from(v));
            }
        }
        opts
    }
}

/// The observer stack for one experiment run; see the module docs.
#[derive(Debug)]
pub struct Observation {
    tracker: Option<Arc<ProgressTracker>>,
    reporter: Option<ProgressReporter>,
    profiler: Option<Arc<PhaseProfiler>>,
    profile_path: Option<PathBuf>,
    runlog: Option<Arc<RunLog>>,
    runlog_path: Option<PathBuf>,
}

impl Observation {
    /// An observation stack from this process's CLI arguments and the
    /// `BEEPS_PROGRESS` environment — the one-liner the experiment
    /// binaries use. `id` names the run log (the experiment log's file
    /// stem); `base_seed` goes into the run log's config digest.
    #[must_use]
    pub fn from_cli(id: &str, base_seed: u64) -> Self {
        Self::from_args(id, base_seed, std::env::args().skip(1))
    }

    /// [`Observation::from_cli`] over an explicit argument list.
    ///
    /// # Panics
    ///
    /// Panics if `--profile` is present without a path value.
    pub fn from_args<I, S>(id: &str, base_seed: u64, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self::from_options(id, base_seed, &Options::parse(args))
    }

    /// An inert stack: attaches nothing, finishes silently.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            tracker: None,
            reporter: None,
            profiler: None,
            profile_path: None,
            runlog: None,
            runlog_path: None,
        }
    }

    fn from_options(id: &str, base_seed: u64, opts: &Options) -> Self {
        let mut obs = Self::disabled();
        if opts.progress {
            let tracker = Arc::new(ProgressTracker::new());
            obs.reporter = Some(ProgressReporter::spawn(Arc::clone(&tracker)));
            obs.tracker = Some(tracker);
        }
        if let Some(path) = &opts.profile {
            obs.profiler = Some(Arc::new(PhaseProfiler::new()));
            obs.profile_path = Some(path.clone());
        }
        if opts.progress || opts.profile.is_some() {
            let path = ExperimentLog::output_dir().join(format!("{id}.runlog.jsonl"));
            let meta = RunMeta {
                run_id: id.to_owned(),
                config_digest: config_digest(&[id, &base_seed.to_string()]),
                base_seed,
            };
            match RunLog::create(&path, &meta) {
                Ok(log) => {
                    obs.runlog = Some(Arc::new(log));
                    obs.runlog_path = Some(path);
                }
                Err(e) => eprintln!("warning: could not open run log {}: {e}", path.display()),
            }
        }
        obs
    }

    /// Whether any observer is active.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.tracker.is_some() || self.profiler.is_some() || self.runlog.is_some()
    }

    /// The path the Chrome trace will be written to, if profiling.
    #[must_use]
    pub fn profile_path(&self) -> Option<&Path> {
        self.profile_path.as_deref()
    }

    /// The path of the JSONL run log, if one is open.
    #[must_use]
    pub fn runlog_path(&self) -> Option<&Path> {
        self.runlog_path.as_deref()
    }

    /// The combined observer stack, or `None` when nothing is active.
    #[must_use]
    pub fn observer(&self) -> Option<Arc<dyn Observer>> {
        let mut multi = MultiObserver::new();
        if let Some(t) = &self.tracker {
            multi = multi.with(Arc::clone(t) as Arc<dyn Observer>);
        }
        if let Some(p) = &self.profiler {
            multi = multi.with(Arc::clone(p) as Arc<dyn Observer>);
        }
        if let Some(l) = &self.runlog {
            multi = multi.with(Arc::clone(l) as Arc<dyn Observer>);
        }
        if multi.is_empty() {
            None
        } else {
            Some(Arc::new(multi))
        }
    }

    /// Attaches the active observers to `runner` (untouched when none
    /// are active).
    #[must_use]
    pub fn attach(&self, runner: TrialRunner) -> TrialRunner {
        match self.observer() {
            Some(obs) => runner.with_observer(obs),
            None => runner,
        }
    }

    /// Ambiently installs the observer stack on the calling thread (as
    /// the main worker) until the guard drops — for instrumented code
    /// invoked outside a [`TrialRunner`], e.g. direct `simulate_batch`
    /// calls. `None` when nothing is active.
    #[must_use]
    pub fn install_ambient(&self) -> Option<beeps_observe::InstallGuard> {
        self.observer()
            .map(|obs| beeps_observe::install(obs, beeps_observe::MAIN_WORKER))
    }

    /// Stops the progress reporter, saves the Chrome trace and prints
    /// the phase summary table, and seals the run log (folding in
    /// `metrics`' event-ring totals when given). Failures warn on
    /// stderr; the experiment's own results are never at risk.
    pub fn finish(mut self, metrics: Option<&MetricsRegistry>) {
        if let Some(reporter) = self.reporter.take() {
            reporter.finish();
        }
        if let (Some(profiler), Some(path)) = (&self.profiler, &self.profile_path) {
            print!("{}", profiler.summary_table());
            match profiler.save_chrome_trace(path) {
                Ok(()) => println!("trace: {}", path.display()),
                Err(e) => eprintln!("warning: could not write trace {}: {e}", path.display()),
            }
        }
        if let Some(runlog) = &self.runlog {
            let summary = RunSummary {
                trials_done: runlog.trials_done(),
                events_recorded: metrics.map_or(0, |m| m.events().recorded()),
                events_dropped: metrics.map_or(0, |m| m.events().dropped()),
                peak_rss_bytes: beeps_observe::clock::peak_rss_bytes(),
            };
            match runlog.finish(&summary) {
                Ok(()) => {
                    if let Some(path) = &self.runlog_path {
                        println!("run log: {}", path.display());
                    }
                }
                Err(e) => eprintln!("warning: could not write run log: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognizes_observation_flags() {
        let opts = Options::parse(["--trials", "5", "--progress", "--profile", "t.json"]);
        assert!(opts.progress);
        assert_eq!(opts.profile.as_deref(), Some(Path::new("t.json")));

        let opts = Options::parse(["--profile=x/y.json"]);
        assert!(!opts.progress || std::env::var("BEEPS_PROGRESS").is_ok());
        assert_eq!(opts.profile.as_deref(), Some(Path::new("x/y.json")));

        let opts = Options::parse(["--threads", "2"]);
        assert_eq!(opts.profile, None);
    }

    #[test]
    #[should_panic(expected = "--profile requires a path")]
    fn missing_profile_path_panics() {
        let _ = Options::parse(["--profile"]);
    }

    #[test]
    fn disabled_observation_attaches_nothing() {
        let obs = Observation::disabled();
        assert!(!obs.is_active());
        let runner = obs.attach(TrialRunner::new(2));
        assert!(runner.observer().is_none());
        obs.finish(None);
    }

    #[test]
    fn profile_only_observation_attaches_and_counts() {
        let dir = std::env::temp_dir().join("beeps_observe_glue_test");
        let trace = dir.join("trace.json");
        let obs = Observation::from_options(
            "glue_test",
            7,
            &Options {
                progress: false,
                profile: Some(trace.clone()),
            },
        );
        assert!(obs.is_active());
        assert_eq!(obs.profile_path(), Some(trace.as_path()));
        let runner = obs.attach(TrialRunner::new(2));
        assert!(runner.observer().is_some());
        let out = runner.run(1, 10, |t| t.index);
        assert_eq!(out.len(), 10);
        // The runlog (if its directory was writable) saw every trial.
        if let Some(log) = &obs.runlog {
            assert_eq!(log.trials_done(), 10);
        }
        obs.finish(None);
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.starts_with("{\"traceEvents\":["), "{trace_text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
