//! Seed-deterministic parallel trial execution.
//!
//! Every experiment in this repository is a Monte Carlo estimate over
//! independent trials. [`TrialRunner`] shards those trials across a
//! scoped worker pool while keeping results **bitwise identical for
//! any thread count**: each trial's randomness is derived purely from
//! `(base_seed, trial_index)` by [`trial_seed`], workers dynamically
//! claim contiguous chunks of trial indices from a shared atomic
//! counter (so a worker stuck on an expensive trial doesn't idle the
//! rest of the pool, as the old static index-striding did under skewed
//! per-trial costs), and results are merged back into trial-index
//! order. Which worker ran a trial, and when, is not observable in the
//! output.
//!
//! Trials that want to reuse buffers across invocations use
//! [`TrialRunner::run_with_scratch`]: each worker owns one scratch
//! value for its whole lifetime, so per-trial allocations can be
//! replaced by a `clear()` — without the scratch ever becoming a
//! side-channel between trials on *different* workers (determinism
//! still requires the trial to fully re-initialize what it reads).
//!
//! Thread count comes from, in order: an explicit
//! [`TrialRunner::new`], the `--threads N` CLI flag
//! ([`TrialRunner::from_args`]), the `BEEPS_THREADS` environment
//! variable, and finally [`std::thread::available_parallelism`].
//!
//! An [`Observer`] attached via [`TrialRunner::with_observer`] receives
//! run / chunk / lane-group lifecycle hooks and is ambiently installed
//! on every worker (so deep instrumentation points — the executor's
//! transmit loop, the lane engines' phases — report to it too). Hooks
//! are observation-only and carry no data back into the engine; with no
//! observer attached every hook site is skipped and the run takes the
//! exact same code path as before the hooks existed.

use std::sync::Arc;

use beeps_channel::NoiseModel;
use beeps_core::{SimError, SimOutcome, SimulationRecorder, Simulator};
use beeps_metrics::MetricsRegistry;
use beeps_observe::{ambient, Observer, RunInfo, MAIN_WORKER};
use rand::{rngs::StdRng, SeedableRng};

use crate::json::Json;

/// Derives the RNG seed for one trial from the experiment's base seed.
///
/// SplitMix64-style finalizer over a golden-ratio index stride: cheap,
/// stateless, and well-mixed, so per-trial streams are independent and
/// a trial's seed never depends on which worker thread claims it.
#[must_use]
pub fn trial_seed(base_seed: u64, trial_index: u64) -> u64 {
    let mut z = base_seed.wrapping_add(
        trial_index
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-trial context handed to the trial closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// This trial's index in `0..trials`.
    pub index: usize,
    /// This trial's derived seed; see [`trial_seed`].
    pub seed: u64,
}

impl Trial {
    /// The context for trial `index` of an experiment at `base_seed`.
    #[must_use]
    pub fn new(base_seed: u64, index: usize) -> Self {
        Self {
            index,
            seed: trial_seed(base_seed, index as u64),
        }
    }

    /// A generator seeded for this trial.
    #[must_use]
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// A generator for an independent named sub-stream of this trial
    /// (e.g. separate input-sampling and channel-noise streams).
    #[must_use]
    pub fn sub_rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(trial_seed(self.seed, stream))
    }
}

/// Shards independent trials across a scoped thread pool.
///
/// # Examples
///
/// ```
/// use beeps_bench::TrialRunner;
///
/// let serial = TrialRunner::new(1).run(0xBEE, 8, |t| t.seed);
/// let parallel = TrialRunner::new(4).run(0xBEE, 8, |t| t.seed);
/// assert_eq!(serial, parallel);
/// ```
#[derive(Clone)]
pub struct TrialRunner {
    threads: usize,
    observer: Option<Arc<dyn Observer>>,
}

impl std::fmt::Debug for TrialRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrialRunner")
            .field("threads", &self.threads)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl TrialRunner {
    /// A runner with an explicit worker count (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            observer: None,
        }
    }

    /// Attaches an [`Observer`] that receives run / chunk / lane-group
    /// hooks and is ambiently installed on every worker thread for the
    /// duration of each run. Observation-only: attaching one never
    /// changes results or metrics (pinned by
    /// `tests/metrics_determinism.rs`).
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The attached observer, if any.
    #[must_use]
    pub fn observer(&self) -> Option<&Arc<dyn Observer>> {
        self.observer.as_ref()
    }

    /// A runner sized from `BEEPS_THREADS`, falling back to
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn from_env() -> Self {
        if let Some(n) = std::env::var("BEEPS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return Self::new(n);
        }
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// A runner sized from a `--threads N` argument in `args`, falling
    /// back to [`TrialRunner::from_env`]. Both `--threads N` and
    /// `--threads=N` are accepted; the experiment binaries pass
    /// `std::env::args().skip(1)` straight through.
    ///
    /// # Panics
    ///
    /// Panics if `--threads` is present but its value is missing or not
    /// an unsigned integer. Silently falling back to the environment
    /// here would run the experiment with an unintended thread count —
    /// harmless for results (they are thread-count invariant) but not
    /// for the wall-clock the user asked to control.
    pub fn from_args<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let parse = |v: &str| {
            v.parse::<usize>().unwrap_or_else(|_| {
                panic!("invalid --threads value {v:?}: expected an unsigned integer")
            })
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            if arg == "--threads" {
                let value = args.next().expect("--threads requires a value");
                return Self::new(parse(value.as_ref()));
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                return Self::new(parse(v));
            }
        }
        Self::from_env()
    }

    /// A runner sized from this process's CLI arguments (then the
    /// environment) — the one-liner the experiment binaries use.
    #[must_use]
    pub fn from_cli() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// The worker count this runner will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `trials` independent trials of `trial_fn` and returns their
    /// results in trial-index order.
    ///
    /// The closure sees only its [`Trial`] (index + derived seed), so
    /// the returned vector is identical for every thread count.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial closure.
    pub fn run<R, F>(&self, base_seed: u64, trials: usize, trial_fn: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Trial) -> R + Sync,
    {
        self.run_with_scratch(base_seed, trials, || (), |trial, _scratch| trial_fn(trial))
    }

    /// The number of contiguous trial indices a worker claims per visit
    /// to the shared counter: small enough that a pocket of expensive
    /// trials spreads over the pool, large enough that the atomic
    /// counter stays off the profile for cheap trials.
    fn chunk_size(trials: usize, workers: usize) -> usize {
        (trials / (workers * 8)).clamp(1, 256)
    }

    /// Like [`TrialRunner::run`], but every worker also owns one
    /// long-lived scratch value (from `make_scratch`) that is handed to
    /// each of its trials in turn — the hook for reusing transcript
    /// buffers, party state, channels, or metrics registries across
    /// trials instead of reallocating them per trial.
    ///
    /// Determinism contract: the scratch is an *allocation* cache, not a
    /// data channel. A trial must reset whatever scratch state it reads
    /// (e.g. `clear()` before filling a buffer); under that contract the
    /// result vector is bitwise identical for every thread count, since
    /// trial-to-worker assignment is not observable.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial closure.
    pub fn run_with_scratch<R, S, M, F>(
        &self,
        base_seed: u64,
        trials: usize,
        make_scratch: M,
        trial_fn: F,
    ) -> Vec<R>
    where
        R: Send,
        M: Fn() -> S + Sync,
        F: Fn(Trial, &mut S) -> R + Sync,
    {
        let workers = self.threads.min(trials.max(1));
        let observer = self.observer.as_ref();
        if workers <= 1 {
            let mut scratch = make_scratch();
            let Some(obs) = observer else {
                return (0..trials)
                    .map(|i| trial_fn(Trial::new(base_seed, i), &mut scratch))
                    .collect();
            };
            // Observed serial run: same trial order, but iterated in
            // chunk-sized groups so the chunk hooks fire with real
            // granularity. Identical iteration order ⇒ identical
            // results (pinned by tests/metrics_determinism.rs).
            obs.on_run_start(RunInfo { trials, workers: 1 });
            let guard = ambient::install(Arc::clone(obs), MAIN_WORKER);
            let chunk = Self::chunk_size(trials, 1);
            let mut out = Vec::with_capacity(trials);
            let mut start = 0;
            while start < trials {
                let end = (start + chunk).min(trials);
                obs.on_chunk_claimed(MAIN_WORKER, start, end - start);
                for i in start..end {
                    out.push(trial_fn(Trial::new(base_seed, i), &mut scratch));
                }
                obs.on_chunk_completed(MAIN_WORKER, start, end - start);
                start = end;
            }
            drop(guard);
            obs.on_run_end(RunInfo { trials, workers: 1 });
            return out;
        }

        if let Some(obs) = observer {
            obs.on_run_start(RunInfo { trials, workers });
        }
        // Deterministic dynamic scheduling: workers claim contiguous
        // chunks of trial indices from a shared counter. Which worker
        // runs which chunk varies run to run; the (index, result) pairs
        // and the index-ordered merge below do not. Claim counters use
        // acquire/release per the workspace atomics policy (beeps-lint
        // `atomic-ordering`): Relaxed is reserved for inert telemetry.
        let chunk = Self::chunk_size(trials, workers);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let shards: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let trial_fn = &trial_fn;
            let make_scratch = &make_scratch;
            let next = &next;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let _ambient = observer.map(|obs| ambient::install(Arc::clone(obs), w));
                        let mut scratch = make_scratch();
                        let mut out = Vec::new();
                        loop {
                            let start = next.fetch_add(chunk, std::sync::atomic::Ordering::AcqRel);
                            if start >= trials {
                                break;
                            }
                            let end = (start + chunk).min(trials);
                            if let Some(obs) = observer {
                                obs.on_chunk_claimed(w, start, end - start);
                            }
                            for i in start..end {
                                out.push((i, trial_fn(Trial::new(base_seed, i), &mut scratch)));
                            }
                            if let Some(obs) = observer {
                                obs.on_chunk_completed(w, start, end - start);
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trial worker panicked"))
                .collect()
        });

        let merge_guard = observer.map(|obs| ambient::install(Arc::clone(obs), MAIN_WORKER));
        let merge_span = ambient::phase("runner.merge");
        let mut slots: Vec<Option<R>> = (0..trials).map(|_| None).collect();
        for (index, result) in shards.into_iter().flatten() {
            debug_assert!(slots[index].is_none(), "trial {index} ran twice");
            slots[index] = Some(result);
        }
        let merged: Vec<R> = slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("trial {i} produced no result")))
            .collect();
        drop(merge_span);
        drop(merge_guard);
        if let Some(obs) = observer {
            obs.on_run_end(RunInfo { trials, workers });
        }
        merged
    }

    /// Runs `trials` Monte Carlo trials of `sim` through the
    /// lane-sliced batch path: each dynamically claimed chunk of trial
    /// indices becomes one [`Simulator::simulate_batch`] lane-group
    /// (seeded by [`trial_seed`] exactly as the per-trial path would
    /// be), and results are merged back in trial-index order.
    ///
    /// Because every `simulate_batch` override is bitwise identical to
    /// per-trial [`Simulator::simulate`], the returned vector is
    /// identical for every thread count *and* to a plain
    /// `run(.., |t| sim.simulate(inputs, model, t.seed))` loop — only
    /// faster for schemes with a lane engine.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the simulator.
    pub fn run_simulations<I, O, S>(
        &self,
        base_seed: u64,
        trials: usize,
        sim: &S,
        inputs: &[I],
        model: NoiseModel,
    ) -> Vec<Result<SimOutcome<O>, SimError>>
    where
        S: Simulator<I, O> + Sync + ?Sized,
        I: Sync,
        O: Send,
    {
        let chunk_seeds = |start: usize, end: usize| -> Vec<u64> {
            (start..end)
                .map(|i| trial_seed(base_seed, i as u64))
                .collect()
        };
        let workers = self.threads.min(trials.max(1));
        let observer = self.observer.as_ref();
        if workers <= 1 {
            let Some(obs) = observer else {
                return sim.simulate_batch(inputs, model, &chunk_seeds(0, trials));
            };
            // Observed serial run: dispatch chunk-sized lane groups so
            // progress is visible. Batch boundaries are unobservable in
            // the output (`simulate_batch` ≡ per-trial `simulate`).
            obs.on_run_start(RunInfo { trials, workers: 1 });
            let guard = ambient::install(Arc::clone(obs), MAIN_WORKER);
            let chunk = Self::chunk_size(trials, 1);
            let mut out = Vec::with_capacity(trials);
            let mut start = 0;
            while start < trials {
                let end = (start + chunk).min(trials);
                obs.on_chunk_claimed(MAIN_WORKER, start, end - start);
                obs.on_lane_group(MAIN_WORKER, end - start);
                out.extend(sim.simulate_batch(inputs, model, &chunk_seeds(start, end)));
                obs.on_chunk_completed(MAIN_WORKER, start, end - start);
                start = end;
            }
            drop(guard);
            obs.on_run_end(RunInfo { trials, workers: 1 });
            return out;
        }

        if let Some(obs) = observer {
            obs.on_run_start(RunInfo { trials, workers });
        }
        let chunk = Self::chunk_size(trials, workers);
        let next = std::sync::atomic::AtomicUsize::new(0);
        // One shard per claimed chunk: its starting trial index plus the
        // batch results for that index range.
        type Shard<O> = (usize, Vec<Result<SimOutcome<O>, SimError>>);
        let shards: Vec<Vec<Shard<O>>> = std::thread::scope(|scope| {
            let next = &next;
            let chunk_seeds = &chunk_seeds;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let _ambient = observer.map(|obs| ambient::install(Arc::clone(obs), w));
                        let mut out = Vec::new();
                        loop {
                            let start = next.fetch_add(chunk, std::sync::atomic::Ordering::AcqRel);
                            if start >= trials {
                                break;
                            }
                            let end = (start + chunk).min(trials);
                            if let Some(obs) = observer {
                                obs.on_chunk_claimed(w, start, end - start);
                                obs.on_lane_group(w, end - start);
                            }
                            let batch = sim.simulate_batch(inputs, model, &chunk_seeds(start, end));
                            debug_assert_eq!(batch.len(), end - start);
                            if let Some(obs) = observer {
                                obs.on_chunk_completed(w, start, end - start);
                            }
                            out.push((start, batch));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulation worker panicked"))
                .collect()
        });

        let merge_guard = observer.map(|obs| ambient::install(Arc::clone(obs), MAIN_WORKER));
        let merge_span = ambient::phase("runner.merge");
        let mut slots: Vec<Option<Result<SimOutcome<O>, SimError>>> =
            (0..trials).map(|_| None).collect();
        for (start, batch) in shards.into_iter().flatten() {
            for (offset, result) in batch.into_iter().enumerate() {
                debug_assert!(slots[start + offset].is_none(), "trial ran twice");
                slots[start + offset] = Some(result);
            }
        }
        let merged: Vec<Result<SimOutcome<O>, SimError>> = slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("trial {i} produced no result")))
            .collect();
        drop(merge_span);
        drop(merge_guard);
        if let Some(obs) = observer {
            obs.on_run_end(RunInfo { trials, workers });
        }
        merged
    }

    /// [`TrialRunner::run_simulations`] plus metrics: every trial's
    /// outcome is folded into a `sim.<name>.*` registry through a
    /// [`SimulationRecorder`] interned once per worker chunk (not once
    /// per trial), and the per-chunk registries are merged in
    /// trial-index order, so the aggregate is bitwise identical for
    /// every thread count.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the simulator.
    pub fn run_simulations_with_metrics<I, O, S>(
        &self,
        base_seed: u64,
        trials: usize,
        sim: &S,
        inputs: &[I],
        model: NoiseModel,
    ) -> (Vec<Result<SimOutcome<O>, SimError>>, MetricsRegistry)
    where
        S: Simulator<I, O> + Sync + ?Sized,
        I: Sync,
        O: Send,
    {
        let chunk_seeds = |start: usize, end: usize| -> Vec<u64> {
            (start..end)
                .map(|i| trial_seed(base_seed, i as u64))
                .collect()
        };
        let workers = self.threads.min(trials.max(1));
        let observer = self.observer.as_ref();
        if workers <= 1 {
            let Some(obs) = observer else {
                let mut merged = MetricsRegistry::new();
                let recorder = SimulationRecorder::new(sim.name(), &mut merged);
                let results = sim.simulate_batch(inputs, model, &chunk_seeds(0, trials));
                for result in &results {
                    recorder.record(result, &mut merged);
                }
                return (results, merged);
            };
            // Observed serial run: per-chunk registries merged in index
            // order reproduce the single-recorder registry exactly
            // (same equivalence the parallel path already relies on).
            obs.on_run_start(RunInfo { trials, workers: 1 });
            let guard = ambient::install(Arc::clone(obs), MAIN_WORKER);
            let chunk = Self::chunk_size(trials, 1);
            let mut merged = MetricsRegistry::new();
            let mut results = Vec::with_capacity(trials);
            let mut start = 0;
            while start < trials {
                let end = (start + chunk).min(trials);
                obs.on_chunk_claimed(MAIN_WORKER, start, end - start);
                obs.on_lane_group(MAIN_WORKER, end - start);
                let batch = sim.simulate_batch(inputs, model, &chunk_seeds(start, end));
                let mut metrics = MetricsRegistry::new();
                let recorder = SimulationRecorder::new(sim.name(), &mut metrics);
                for result in &batch {
                    recorder.record(result, &mut metrics);
                }
                merged.merge_from(&metrics);
                results.extend(batch);
                obs.on_chunk_completed(MAIN_WORKER, start, end - start);
                start = end;
            }
            drop(guard);
            obs.on_run_end(RunInfo { trials, workers: 1 });
            return (results, merged);
        }

        if let Some(obs) = observer {
            obs.on_run_start(RunInfo { trials, workers });
        }
        let chunk = Self::chunk_size(trials, workers);
        let next = std::sync::atomic::AtomicUsize::new(0);
        type Shard<O> = (usize, Vec<Result<SimOutcome<O>, SimError>>, MetricsRegistry);
        let shards: Vec<Vec<Shard<O>>> = std::thread::scope(|scope| {
            let next = &next;
            let chunk_seeds = &chunk_seeds;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let _ambient = observer.map(|obs| ambient::install(Arc::clone(obs), w));
                        let mut out = Vec::new();
                        loop {
                            let start = next.fetch_add(chunk, std::sync::atomic::Ordering::AcqRel);
                            if start >= trials {
                                break;
                            }
                            let end = (start + chunk).min(trials);
                            if let Some(obs) = observer {
                                obs.on_chunk_claimed(w, start, end - start);
                                obs.on_lane_group(w, end - start);
                            }
                            let batch = sim.simulate_batch(inputs, model, &chunk_seeds(start, end));
                            let mut metrics = MetricsRegistry::new();
                            let recorder = SimulationRecorder::new(sim.name(), &mut metrics);
                            for result in &batch {
                                recorder.record(result, &mut metrics);
                            }
                            if let Some(obs) = observer {
                                obs.on_chunk_completed(w, start, end - start);
                            }
                            out.push((start, batch, metrics));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulation worker panicked"))
                .collect()
        });

        // Chunks are contiguous index ranges, so merging the per-chunk
        // registries sorted by start index reproduces the per-trial
        // merge order exactly.
        let merge_guard = observer.map(|obs| ambient::install(Arc::clone(obs), MAIN_WORKER));
        let merge_span = ambient::phase("runner.merge");
        let mut chunks: Vec<Shard<O>> = shards.into_iter().flatten().collect();
        chunks.sort_by_key(|(start, _, _)| *start);
        let mut merged = MetricsRegistry::new();
        let mut slots: Vec<Option<Result<SimOutcome<O>, SimError>>> =
            (0..trials).map(|_| None).collect();
        for (start, batch, metrics) in chunks {
            merged.merge_from(&metrics);
            for (offset, result) in batch.into_iter().enumerate() {
                debug_assert!(slots[start + offset].is_none(), "trial ran twice");
                slots[start + offset] = Some(result);
            }
        }
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("trial {i} produced no result")))
            .collect();
        drop(merge_span);
        drop(merge_guard);
        if let Some(obs) = observer {
            obs.on_run_end(RunInfo { trials, workers });
        }
        (results, merged)
    }

    /// [`TrialRunner::run`] for the common record shape: runs the
    /// trials and aggregates the [`TrialRecord`]s into a [`Summary`].
    pub fn run_records<F>(&self, base_seed: u64, trials: usize, trial_fn: F) -> Summary
    where
        F: Fn(Trial) -> TrialRecord + Sync,
    {
        Summary::of(&self.run(base_seed, trials, trial_fn))
    }

    /// Like [`TrialRunner::run`], but each trial also gets an **empty**
    /// [`MetricsRegistry`] to record into; the per-trial registries are
    /// merged back **in trial-index order**, so the aggregate — counters,
    /// histograms, and the bounded event log alike — is bitwise identical
    /// for every thread count. (Wall-clock spans are merged too but live
    /// in the registry's non-deterministic section.)
    ///
    /// Serially (one worker) the registry handed to each trial is a
    /// single scratch registry [`reset`](MetricsRegistry::reset) between
    /// trials and merged as each trial completes, eliminating the
    /// per-trial registry allocation; in parallel every trial records
    /// into a fresh registry as before. The two paths produce equal
    /// merged registries — pinned by the thread-count invariance tests
    /// here and in `tests/metrics_determinism.rs`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial closure.
    pub fn run_with_metrics<R, F>(
        &self,
        base_seed: u64,
        trials: usize,
        trial_fn: F,
    ) -> (Vec<R>, MetricsRegistry)
    where
        R: Send,
        F: Fn(Trial, &mut MetricsRegistry) -> R + Sync,
    {
        if self.threads.min(trials.max(1)) <= 1 {
            let mut scratch = MetricsRegistry::new();
            let mut merged = MetricsRegistry::new();
            let mut results = Vec::with_capacity(trials);
            let Some(obs) = self.observer.as_ref() else {
                for i in 0..trials {
                    scratch.reset();
                    results.push(trial_fn(Trial::new(base_seed, i), &mut scratch));
                    merged.merge_from(&scratch);
                }
                return (results, merged);
            };
            // Observed serial run: same per-trial reset/record/merge
            // sequence, iterated in chunk-sized groups for the hooks.
            obs.on_run_start(RunInfo { trials, workers: 1 });
            let guard = ambient::install(Arc::clone(obs), MAIN_WORKER);
            let chunk = Self::chunk_size(trials, 1);
            let mut start = 0;
            while start < trials {
                let end = (start + chunk).min(trials);
                obs.on_chunk_claimed(MAIN_WORKER, start, end - start);
                for i in start..end {
                    scratch.reset();
                    results.push(trial_fn(Trial::new(base_seed, i), &mut scratch));
                    merged.merge_from(&scratch);
                }
                obs.on_chunk_completed(MAIN_WORKER, start, end - start);
                start = end;
            }
            drop(guard);
            obs.on_run_end(RunInfo { trials, workers: 1 });
            return (results, merged);
        }
        // Run/chunk hooks (and per-worker ambient installation) fire
        // inside `run`; only the extra registry merge is added here.
        let pairs = self.run(base_seed, trials, |trial| {
            let mut metrics = MetricsRegistry::new();
            let result = trial_fn(trial, &mut metrics);
            (result, metrics)
        });
        let merge_guard = self
            .observer
            .as_ref()
            .map(|obs| ambient::install(Arc::clone(obs), MAIN_WORKER));
        let merge_span = ambient::phase("runner.merge");
        let mut merged = MetricsRegistry::new();
        let mut results = Vec::with_capacity(pairs.len());
        for (result, metrics) in pairs {
            merged.merge_from(&metrics);
            results.push(result);
        }
        drop(merge_span);
        drop(merge_guard);
        (results, merged)
    }
}

/// What one trial of an experiment measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRecord {
    /// Channel rounds the trial consumed.
    pub rounds: u64,
    /// Total beeps emitted across all parties.
    pub energy: u64,
    /// Rounds where noise corrupted at least one listener.
    pub corrupted_rounds: u64,
    /// Whether the trial met its experiment's success criterion.
    pub success: bool,
}

impl TrialRecord {
    /// A record for a failed trial with no measurements (e.g. budget
    /// exhaustion before any round completed).
    #[must_use]
    pub fn failure() -> Self {
        Self {
            rounds: 0,
            energy: 0,
            corrupted_rounds: 0,
            success: false,
        }
    }
}

/// Aggregate statistics over a batch of [`TrialRecord`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Trials whose success criterion held.
    pub successes: usize,
    /// Mean channel rounds per trial.
    pub mean_rounds: f64,
    /// Mean energy (total beeps) per trial.
    pub mean_energy: f64,
    /// Mean corrupted rounds per trial.
    pub mean_corrupted_rounds: f64,
}

impl Summary {
    /// Aggregates `records` (empty input yields all-zero means).
    #[must_use]
    pub fn of(records: &[TrialRecord]) -> Self {
        let trials = records.len();
        let denom = trials.max(1) as f64;
        Self {
            trials,
            successes: records.iter().filter(|r| r.success).count(),
            mean_rounds: records.iter().map(|r| r.rounds as f64).sum::<f64>() / denom,
            mean_energy: records.iter().map(|r| r.energy as f64).sum::<f64>() / denom,
            mean_corrupted_rounds: records
                .iter()
                .map(|r| r.corrupted_rounds as f64)
                .sum::<f64>()
                / denom,
        }
    }

    /// Fraction of trials that succeeded.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// This summary as an ordered JSON object for [`crate::ExperimentLog`].
    #[must_use]
    pub fn json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("trials", self.trials)
            .set("successes", self.successes)
            .set("success_rate", self.success_rate())
            .set("mean_rounds", self.mean_rounds)
            .set("mean_energy", self.mean_energy)
            .set("mean_corrupted_rounds", self.mean_corrupted_rounds);
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_stable_and_distinct() {
        let a = trial_seed(42, 0);
        assert_eq!(a, trial_seed(42, 0));
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|i| trial_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000, "seed collision within one experiment");
        assert_ne!(trial_seed(42, 5), trial_seed(43, 5));
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let work = |t: Trial| {
            use rand::Rng;
            let mut rng = t.rng();
            (t.index, rng.gen_range(0u64..1_000_000), rng.gen_bool(0.5))
        };
        let baseline = TrialRunner::new(1).run(7, 33, work);
        for threads in [2, 3, 8, 64] {
            assert_eq!(TrialRunner::new(threads).run(7, 33, work), baseline);
        }
    }

    #[test]
    fn skewed_trial_costs_preserve_determinism() {
        // Adversarial 100x cost skew: every 8th trial does 100x the
        // work, so dynamic chunk claiming assigns trials to workers in
        // a genuinely schedule-dependent way — and must not show it.
        let work = |t: Trial| {
            use rand::Rng;
            let mut rng = t.rng();
            let iters = if t.index.is_multiple_of(8) {
                10_000
            } else {
                100
            };
            let mut acc = 0u64;
            for _ in 0..iters {
                acc = acc.wrapping_add(rng.gen_range(0u64..1_000));
            }
            (t.index, acc)
        };
        let baseline = TrialRunner::new(1).run(0x5EED, 41, work);
        for threads in [2, 8, 64] {
            assert_eq!(
                TrialRunner::new(threads).run(0x5EED, 41, work),
                baseline,
                "{threads} threads diverged under skewed costs"
            );
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_state_at_any_thread_count() {
        // Each trial fills a reused buffer after clearing it; sizes are
        // skewed so chunk boundaries land differently per thread count.
        let work = |t: Trial, buf: &mut Vec<u64>| {
            use rand::Rng;
            let mut rng = t.rng();
            buf.clear();
            let len = if t.index.is_multiple_of(8) { 800 } else { 8 };
            for _ in 0..len {
                buf.push(rng.gen_range(0u64..1_000));
            }
            buf.iter().sum::<u64>()
        };
        let baseline = TrialRunner::new(1).run(3, 37, |t| {
            let mut fresh = Vec::new();
            work(t, &mut fresh)
        });
        for threads in [1, 2, 8, 64] {
            let got = TrialRunner::new(threads).run_with_scratch(3, 37, Vec::new, work);
            assert_eq!(got, baseline, "{threads} threads diverged with scratch");
        }
    }

    #[test]
    fn chunk_size_adapts_but_stays_bounded() {
        assert_eq!(TrialRunner::chunk_size(10, 8), 1);
        assert_eq!(TrialRunner::chunk_size(1_000, 4), 31);
        assert_eq!(TrialRunner::chunk_size(1_000_000, 2), 256);
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let out = TrialRunner::new(16).run(1, 3, |t| t.index);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn zero_trials_yields_empty() {
        assert!(TrialRunner::new(4).run(1, 0, |t| t.index).is_empty());
    }

    #[test]
    fn args_parsing_prefers_explicit_threads() {
        assert_eq!(TrialRunner::from_args(["--threads", "3"]).threads(), 3);
        assert_eq!(TrialRunner::from_args(["--threads=5"]).threads(), 5);
        assert!(TrialRunner::from_args(["--other"]).threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "invalid --threads value")]
    fn unparsable_threads_value_panics() {
        TrialRunner::from_args(["--threads", "lots"]);
    }

    #[test]
    #[should_panic(expected = "invalid --threads value")]
    fn unparsable_threads_eq_value_panics() {
        TrialRunner::from_args(["--threads=many", "--threads=2"]);
    }

    #[test]
    #[should_panic(expected = "--threads requires a value")]
    fn missing_threads_value_panics() {
        TrialRunner::from_args(["--threads"]);
    }

    #[test]
    fn summary_aggregates_records() {
        let records = [
            TrialRecord {
                rounds: 10,
                energy: 4,
                corrupted_rounds: 1,
                success: true,
            },
            TrialRecord {
                rounds: 20,
                energy: 6,
                corrupted_rounds: 3,
                success: false,
            },
        ];
        let s = Summary::of(&records);
        assert_eq!(s.trials, 2);
        assert_eq!(s.successes, 1);
        assert!((s.success_rate() - 0.5).abs() < 1e-12);
        assert!((s.mean_rounds - 15.0).abs() < 1e-12);
        assert!((s.mean_energy - 5.0).abs() < 1e-12);
        assert!((s.mean_corrupted_rounds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_merge_is_independent_of_thread_count() {
        let work = |t: Trial, m: &mut MetricsRegistry| {
            use rand::Rng;
            let mut rng = t.rng();
            let rounds: u64 = rng.gen_range(1..1000);
            m.inc("rounds", rounds);
            m.observe("rounds", rounds);
            m.event("trial", t.index as u64, rounds);
            m.time("work", || ());
            rounds
        };
        let (baseline_results, baseline) = TrialRunner::new(1).run_with_metrics(11, 29, work);
        for threads in [2, 8] {
            let (results, metrics) = TrialRunner::new(threads).run_with_metrics(11, 29, work);
            assert_eq!(results, baseline_results);
            assert_eq!(metrics, baseline, "{threads} threads diverged");
            // Event order (not just totals) must match too.
            let a: Vec<u64> = metrics.events().iter().map(|e| e.round).collect();
            let b: Vec<u64> = baseline.events().iter().map(|e| e.round).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sub_rng_streams_differ() {
        use rand::Rng;
        let t = Trial::new(9, 0);
        let a: u64 = t.sub_rng(0).gen_range(0..u64::MAX);
        let b: u64 = t.sub_rng(1).gen_range(0..u64::MAX);
        assert_ne!(a, b);
    }
}
