//! Seed-deterministic parallel trial execution.
//!
//! Every experiment in this repository is a Monte Carlo estimate over
//! independent trials. [`TrialRunner`] shards those trials across a
//! scoped worker pool while keeping results **bitwise identical for
//! any thread count**: each trial's randomness is derived purely from
//! `(base_seed, trial_index)` by [`trial_seed`], workers pick trials by
//! index striding, and results are merged back into trial-index order.
//! Nothing a trial computes can observe which worker ran it or when.
//!
//! Thread count comes from, in order: an explicit
//! [`TrialRunner::new`], the `--threads N` CLI flag
//! ([`TrialRunner::from_args`]), the `BEEPS_THREADS` environment
//! variable, and finally [`std::thread::available_parallelism`].

use beeps_metrics::MetricsRegistry;
use rand::{rngs::StdRng, SeedableRng};

use crate::json::Json;

/// Derives the RNG seed for one trial from the experiment's base seed.
///
/// SplitMix64-style finalizer over a golden-ratio index stride: cheap,
/// stateless, and well-mixed, so per-trial streams are independent and
/// a trial's seed never depends on which worker thread claims it.
#[must_use]
pub fn trial_seed(base_seed: u64, trial_index: u64) -> u64 {
    let mut z = base_seed.wrapping_add(
        trial_index
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-trial context handed to the trial closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// This trial's index in `0..trials`.
    pub index: usize,
    /// This trial's derived seed; see [`trial_seed`].
    pub seed: u64,
}

impl Trial {
    /// The context for trial `index` of an experiment at `base_seed`.
    #[must_use]
    pub fn new(base_seed: u64, index: usize) -> Self {
        Self {
            index,
            seed: trial_seed(base_seed, index as u64),
        }
    }

    /// A generator seeded for this trial.
    #[must_use]
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// A generator for an independent named sub-stream of this trial
    /// (e.g. separate input-sampling and channel-noise streams).
    #[must_use]
    pub fn sub_rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(trial_seed(self.seed, stream))
    }
}

/// Shards independent trials across a scoped thread pool.
///
/// # Examples
///
/// ```
/// use beeps_bench::TrialRunner;
///
/// let serial = TrialRunner::new(1).run(0xBEE, 8, |t| t.seed);
/// let parallel = TrialRunner::new(4).run(0xBEE, 8, |t| t.seed);
/// assert_eq!(serial, parallel);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TrialRunner {
    threads: usize,
}

impl TrialRunner {
    /// A runner with an explicit worker count (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A runner sized from `BEEPS_THREADS`, falling back to
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn from_env() -> Self {
        if let Some(n) = std::env::var("BEEPS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return Self::new(n);
        }
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// A runner sized from a `--threads N` argument in `args`, falling
    /// back to [`TrialRunner::from_env`]. Both `--threads N` and
    /// `--threads=N` are accepted; the experiment binaries pass
    /// `std::env::args().skip(1)` straight through.
    pub fn from_args<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            if arg == "--threads" {
                if let Some(n) = args.next().and_then(|v| v.as_ref().parse::<usize>().ok()) {
                    return Self::new(n);
                }
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                if let Ok(n) = v.parse::<usize>() {
                    return Self::new(n);
                }
            }
        }
        Self::from_env()
    }

    /// A runner sized from this process's CLI arguments (then the
    /// environment) — the one-liner the experiment binaries use.
    #[must_use]
    pub fn from_cli() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// The worker count this runner will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `trials` independent trials of `trial_fn` and returns their
    /// results in trial-index order.
    ///
    /// The closure sees only its [`Trial`] (index + derived seed), so
    /// the returned vector is identical for every thread count.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial closure.
    pub fn run<R, F>(&self, base_seed: u64, trials: usize, trial_fn: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Trial) -> R + Sync,
    {
        let workers = self.threads.min(trials.max(1));
        if workers <= 1 {
            return (0..trials)
                .map(|i| trial_fn(Trial::new(base_seed, i)))
                .collect();
        }

        // Index-strided sharding: worker w takes trials w, w+W, w+2W, …
        // Each worker returns (index, result) pairs; merging by index
        // erases scheduling order from the output.
        let shards: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let trial_fn = &trial_fn;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        (w..trials)
                            .step_by(workers)
                            .map(|i| (i, trial_fn(Trial::new(base_seed, i))))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trial worker panicked"))
                .collect()
        });

        let mut slots: Vec<Option<R>> = (0..trials).map(|_| None).collect();
        for (index, result) in shards.into_iter().flatten() {
            debug_assert!(slots[index].is_none(), "trial {index} ran twice");
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("trial {i} produced no result")))
            .collect()
    }

    /// [`TrialRunner::run`] for the common record shape: runs the
    /// trials and aggregates the [`TrialRecord`]s into a [`Summary`].
    pub fn run_records<F>(&self, base_seed: u64, trials: usize, trial_fn: F) -> Summary
    where
        F: Fn(Trial) -> TrialRecord + Sync,
    {
        Summary::of(&self.run(base_seed, trials, trial_fn))
    }

    /// Like [`TrialRunner::run`], but each trial also gets a **fresh**
    /// [`MetricsRegistry`] to record into; the per-trial registries are
    /// merged back **in trial-index order**, so the aggregate — counters,
    /// histograms, and the bounded event log alike — is bitwise identical
    /// for every thread count. (Wall-clock spans are merged too but live
    /// in the registry's non-deterministic section.)
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial closure.
    pub fn run_with_metrics<R, F>(
        &self,
        base_seed: u64,
        trials: usize,
        trial_fn: F,
    ) -> (Vec<R>, MetricsRegistry)
    where
        R: Send,
        F: Fn(Trial, &mut MetricsRegistry) -> R + Sync,
    {
        let pairs = self.run(base_seed, trials, |trial| {
            let mut metrics = MetricsRegistry::new();
            let result = trial_fn(trial, &mut metrics);
            (result, metrics)
        });
        let mut merged = MetricsRegistry::new();
        let mut results = Vec::with_capacity(pairs.len());
        for (result, metrics) in pairs {
            merged.merge_from(&metrics);
            results.push(result);
        }
        (results, merged)
    }
}

/// What one trial of an experiment measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRecord {
    /// Channel rounds the trial consumed.
    pub rounds: u64,
    /// Total beeps emitted across all parties.
    pub energy: u64,
    /// Rounds where noise corrupted at least one listener.
    pub corrupted_rounds: u64,
    /// Whether the trial met its experiment's success criterion.
    pub success: bool,
}

impl TrialRecord {
    /// A record for a failed trial with no measurements (e.g. budget
    /// exhaustion before any round completed).
    #[must_use]
    pub fn failure() -> Self {
        Self {
            rounds: 0,
            energy: 0,
            corrupted_rounds: 0,
            success: false,
        }
    }
}

/// Aggregate statistics over a batch of [`TrialRecord`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Trials whose success criterion held.
    pub successes: usize,
    /// Mean channel rounds per trial.
    pub mean_rounds: f64,
    /// Mean energy (total beeps) per trial.
    pub mean_energy: f64,
    /// Mean corrupted rounds per trial.
    pub mean_corrupted_rounds: f64,
}

impl Summary {
    /// Aggregates `records` (empty input yields all-zero means).
    #[must_use]
    pub fn of(records: &[TrialRecord]) -> Self {
        let trials = records.len();
        let denom = trials.max(1) as f64;
        Self {
            trials,
            successes: records.iter().filter(|r| r.success).count(),
            mean_rounds: records.iter().map(|r| r.rounds as f64).sum::<f64>() / denom,
            mean_energy: records.iter().map(|r| r.energy as f64).sum::<f64>() / denom,
            mean_corrupted_rounds: records
                .iter()
                .map(|r| r.corrupted_rounds as f64)
                .sum::<f64>()
                / denom,
        }
    }

    /// Fraction of trials that succeeded.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// This summary as an ordered JSON object for [`crate::ExperimentLog`].
    #[must_use]
    pub fn json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("trials", self.trials)
            .set("successes", self.successes)
            .set("success_rate", self.success_rate())
            .set("mean_rounds", self.mean_rounds)
            .set("mean_energy", self.mean_energy)
            .set("mean_corrupted_rounds", self.mean_corrupted_rounds);
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_stable_and_distinct() {
        let a = trial_seed(42, 0);
        assert_eq!(a, trial_seed(42, 0));
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|i| trial_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000, "seed collision within one experiment");
        assert_ne!(trial_seed(42, 5), trial_seed(43, 5));
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let work = |t: Trial| {
            use rand::Rng;
            let mut rng = t.rng();
            (t.index, rng.gen_range(0u64..1_000_000), rng.gen_bool(0.5))
        };
        let baseline = TrialRunner::new(1).run(7, 33, work);
        for threads in [2, 3, 8, 64] {
            assert_eq!(TrialRunner::new(threads).run(7, 33, work), baseline);
        }
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let out = TrialRunner::new(16).run(1, 3, |t| t.index);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn zero_trials_yields_empty() {
        assert!(TrialRunner::new(4).run(1, 0, |t| t.index).is_empty());
    }

    #[test]
    fn args_parsing_prefers_explicit_threads() {
        assert_eq!(TrialRunner::from_args(["--threads", "3"]).threads(), 3);
        assert_eq!(TrialRunner::from_args(["--threads=5"]).threads(), 5);
        assert!(TrialRunner::from_args(["--other"]).threads() >= 1);
    }

    #[test]
    fn summary_aggregates_records() {
        let records = [
            TrialRecord {
                rounds: 10,
                energy: 4,
                corrupted_rounds: 1,
                success: true,
            },
            TrialRecord {
                rounds: 20,
                energy: 6,
                corrupted_rounds: 3,
                success: false,
            },
        ];
        let s = Summary::of(&records);
        assert_eq!(s.trials, 2);
        assert_eq!(s.successes, 1);
        assert!((s.success_rate() - 0.5).abs() < 1e-12);
        assert!((s.mean_rounds - 15.0).abs() < 1e-12);
        assert!((s.mean_energy - 5.0).abs() < 1e-12);
        assert!((s.mean_corrupted_rounds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_merge_is_independent_of_thread_count() {
        let work = |t: Trial, m: &mut MetricsRegistry| {
            use rand::Rng;
            let mut rng = t.rng();
            let rounds: u64 = rng.gen_range(1..1000);
            m.inc("rounds", rounds);
            m.observe("rounds", rounds);
            m.event("trial", t.index as u64, rounds);
            m.time("work", || ());
            rounds
        };
        let (baseline_results, baseline) = TrialRunner::new(1).run_with_metrics(11, 29, work);
        for threads in [2, 8] {
            let (results, metrics) = TrialRunner::new(threads).run_with_metrics(11, 29, work);
            assert_eq!(results, baseline_results);
            assert_eq!(metrics, baseline, "{threads} threads diverged");
            // Event order (not just totals) must match too.
            let a: Vec<u64> = metrics.events().iter().map(|e| e.round).collect();
            let b: Vec<u64> = baseline.events().iter().map(|e| e.round).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sub_rng_streams_differ() {
        use rand::Rng;
        let t = Trial::new(9, 0);
        let a: u64 = t.sub_rng(0).gen_range(0..u64::MAX);
        let b: u64 = t.sub_rng(1).gen_range(0..u64::MAX);
        assert_ne!(a, b);
    }
}
