//! Hand-rolled JSON emission for experiment logs.
//!
//! The workspace deliberately keeps its dependency set to
//! `rand`/`proptest`/`criterion`, so experiment results are serialised
//! by this small emitter instead of `serde`. Output is fully
//! deterministic: object keys keep insertion order, floats render via
//! Rust's shortest-round-trip `Display`, and nothing environmental
//! (thread count, timestamps, hostnames) is ever written — the same
//! experiment at the same base seed produces byte-identical files
//! regardless of how many worker threads computed it.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use beeps_metrics::MetricsRegistry;

use crate::Table;

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also emitted for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite (or not: rendered as `null`) floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object whose keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object builder.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends `key: value` to an object, preserving order.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`Json::Object`].
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Renders this value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Shortest round-trip form; `4.0` Displays as "4",
                    // so restore the ".0" to keep float-ness visible.
                    let start = out.len();
                    let _ = write!(out, "{v}");
                    if !out[start..].contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The **deterministic section** of `metrics` as an ordered JSON object:
/// counters, histograms (count/sum/min/max plus the non-empty log₂
/// buckets as `[index, count]` pairs), and the event-log summary with
/// its retained tail.
///
/// Wall-clock timings are deliberately **not** serialised: experiment
/// JSON files promise byte-identity across reruns and thread counts,
/// and wall times are the one part of a registry that cannot keep that
/// promise.
pub fn metrics_json(metrics: &MetricsRegistry) -> Json {
    let mut counters = Json::object();
    for (name, v) in metrics.counters() {
        counters.set(name, v);
    }
    let mut histograms = Json::object();
    for (name, h) in metrics.histograms() {
        let mut obj = Json::object();
        obj.set("count", h.count()).set("sum", h.sum());
        obj.set("min", h.min().map_or(Json::Null, Json::UInt));
        obj.set("max", h.max().map_or(Json::Null, Json::UInt));
        obj.set(
            "buckets",
            Json::Array(
                h.nonzero_buckets()
                    .map(|(idx, count)| Json::Array(vec![Json::UInt(idx as u64), count.into()]))
                    .collect(),
            ),
        );
        histograms.set(name, obj);
    }
    let ev = metrics.events();
    let mut events = Json::object();
    events
        .set("recorded", ev.recorded())
        .set("dropped", ev.dropped())
        .set("capacity", ev.capacity());
    events.set(
        "retained",
        Json::Array(
            ev.iter()
                .map(|e| {
                    let mut obj = Json::object();
                    obj.set("label", e.label.as_str())
                        .set("round", e.round)
                        .set("value", e.value);
                    obj
                })
                .collect(),
        ),
    );
    let mut root = Json::object();
    root.set("counters", counters)
        .set("histograms", histograms)
        .set("events", events);
    root
}

/// Structured log for one experiment run, written to
/// `target/experiments/<id>.json`.
///
/// Fields and tables appear in the JSON in the order they were added.
/// The output intentionally excludes anything scheduling-dependent so
/// that reruns with different `--threads` stay byte-identical.
///
/// # Examples
///
/// ```
/// use beeps_bench::{ExperimentLog, Json};
///
/// let mut log = ExperimentLog::new("doc_demo");
/// log.field("base_seed", 0xBEEFu64).field("trials", 10usize);
/// assert!(log.render().starts_with("{\"experiment\":\"doc_demo\""));
/// ```
#[derive(Debug)]
pub struct ExperimentLog {
    id: String,
    fields: Vec<(String, Json)>,
    tables: Vec<Json>,
    metrics: Option<Json>,
}

impl ExperimentLog {
    /// A new log for the experiment `id` (also the output file stem).
    pub fn new(id: &str) -> Self {
        Self {
            id: id.to_owned(),
            fields: Vec::new(),
            tables: Vec::new(),
            metrics: None,
        }
    }

    /// Records a scalar parameter or result.
    pub fn field(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        self.fields.push((key.to_owned(), value.into()));
        self
    }

    /// Records a results [`Table`] (name, columns, stringified rows).
    pub fn table(&mut self, table: &Table) -> &mut Self {
        let mut obj = Json::object();
        obj.set("name", table.name());
        obj.set(
            "columns",
            Json::Array(table.headers().iter().map(|h| h.as_str().into()).collect()),
        );
        obj.set(
            "rows",
            Json::Array(
                table
                    .rows()
                    .iter()
                    .map(|row| Json::Array(row.iter().map(|c| c.as_str().into()).collect()))
                    .collect(),
            ),
        );
        self.tables.push(obj);
        self
    }

    /// Records the deterministic section of `metrics` as the log's
    /// `metrics` block (see [`metrics_json`]); a second call replaces
    /// the first.
    pub fn metrics(&mut self, metrics: &MetricsRegistry) -> &mut Self {
        self.metrics = Some(metrics_json(metrics));
        self
    }

    /// Renders the full log as one JSON object.
    pub fn render(&self) -> String {
        let mut root = Json::object();
        root.set("experiment", self.id.as_str());
        if let Json::Object(fields) = &mut root {
            fields.extend(self.fields.iter().cloned());
        }
        root.set("tables", Json::Array(self.tables.clone()));
        if let Some(metrics) = &self.metrics {
            root.set("metrics", metrics.clone());
        }
        root.render()
    }

    /// The directory experiment logs are written to:
    /// `$BEEPS_EXPERIMENTS_DIR` if set, else `target/experiments`.
    pub fn output_dir() -> PathBuf {
        match std::env::var_os("BEEPS_EXPERIMENTS_DIR") {
            Some(dir) => PathBuf::from(dir),
            None => Path::new("target").join("experiments"),
        }
    }

    /// Writes the log to `<output_dir>/<id>.json`, creating the
    /// directory if needed, and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation or the
    /// file write.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = Self::output_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// [`ExperimentLog::write`], reporting the outcome on
    /// stdout/stderr instead of returning it — the one-liner the
    /// experiment binaries end with.
    pub fn save(&self) {
        match self.write() {
            Ok(path) => println!("log: {}", path.display()),
            Err(e) => eprintln!("warning: could not write experiment log: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let mut obj = Json::object();
        obj.set("b", true)
            .set("u", 7u64)
            .set("i", -3i64)
            .set("f", 2.5)
            .set("whole", 4.0)
            .set("s", "hi\"\\\n")
            .set("a", vec![1u64, 2]);
        assert_eq!(
            obj.render(),
            r#"{"b":true,"u":7,"i":-3,"f":2.5,"whole":4.0,"s":"hi\"\\\n","a":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let mut obj = Json::object();
        obj.set("zebra", 1u64).set("apple", 2u64);
        assert_eq!(obj.render(), r#"{"zebra":1,"apple":2}"#);
    }

    #[test]
    fn log_embeds_tables() {
        let mut t = Table::new("demo", &["n", "x"]);
        t.row(&[&4, &"1.5"]);
        let mut log = ExperimentLog::new("unit");
        log.field("seed", 9u64).table(&t);
        assert_eq!(
            log.render(),
            r#"{"experiment":"unit","seed":9,"tables":[{"name":"demo","columns":["n","x"],"rows":[["4","1.5"]]}]}"#
        );
    }

    #[test]
    fn rendering_is_reproducible() {
        let mut log = ExperimentLog::new("twice");
        log.field("p", 0.25).field("q", 1u64);
        assert_eq!(log.render(), log.render());
    }

    #[test]
    fn metrics_block_serialises_deterministic_section_only() {
        let mut m = MetricsRegistry::new();
        m.inc("sim.rewind.rewinds", 2);
        m.observe("sim.rewind.rounds", 100);
        m.event("sim.rewind.rewind_storm", 100, 2);
        m.time("sim.rewind.simulate", || ()); // wall: must not appear
        let rendered = metrics_json(&m).render();
        assert!(rendered.contains(r#""sim.rewind.rewinds":2"#));
        assert!(rendered.contains(r#""count":1"#));
        assert!(rendered.contains(r#""recorded":1"#));
        assert!(
            !rendered.contains("wall") && !rendered.contains("simulate"),
            "wall timings leaked into JSON: {rendered}"
        );

        let mut log = ExperimentLog::new("unit_metrics");
        log.field("seed", 1u64).metrics(&m);
        assert!(log.render().contains(r#""metrics":{"counters""#));
    }

    #[test]
    fn empty_registry_serialises_to_empty_sections() {
        let rendered = metrics_json(&MetricsRegistry::new()).render();
        assert!(rendered.starts_with(r#"{"counters":{},"histograms":{},"#));
    }
}
