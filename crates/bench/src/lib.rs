//! Shared helpers for the experiment binaries (`src/bin/fig*_*.rs`,
//! `src/bin/tab*_*.rs`) that regenerate every experiment in
//! `EXPERIMENTS.md`, and for the Criterion micro-benchmarks in `benches/`.
//!
//! The experiment engine lives in [`runner`] (seed-deterministic
//! parallel trial execution), [`json`] (dependency-free experiment
//! logs under `target/experiments/`), and [`observe`] (the
//! `--progress` / `--profile` observer stack from `beeps-observe`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
pub mod observe;
pub mod runner;

pub use json::{metrics_json, ExperimentLog, Json};
pub use observe::Observation;
pub use runner::{trial_seed, Summary, Trial, TrialRecord, TrialRunner};

use std::fmt::Display;

/// A printable results table: one experiment, one table.
///
/// # Examples
///
/// ```
/// use beeps_bench::Table;
///
/// let mut t = Table::new("demo", &["n", "overhead"]);
/// t.row(&[&4, &12.5]);
/// t.print();
/// ```
#[derive(Debug)]
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given column headers.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Self {
            name: name.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; `cells.len()` must match the header count.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The formatted rows appended so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Pretty-prints the table to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("== {} ==", self.name);
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("{}", header.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        }
        println!();
    }
}

/// Formats a float with three significant-ish decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Ordinary least squares fit `y ≈ a·x + b`, returning `(a, b, r²)` — used
/// by the experiments to report log-linear trends.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than 2 points.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    assert_eq!(x.len(), y.len(), "need matched samples");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    let syy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
    let a = sxy / sxx;
    let b = my - a * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (a, b, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_mismatched_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&[&1, &2]);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(&[&1]);
        }))
        .is_err());
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let (a, b, r2) = linear_fit(&x, &y);
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_r2_degrades_with_noise() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 4.0, 2.0, 5.0, 3.0];
        let (_, _, r2) = linear_fit(&x, &y);
        assert!(r2 < 0.9);
    }
}
