//! **Experiment E15 / scaling figure — a million parties on one machine.**
//!
//! Two sweeps, two regimes:
//!
//! 1. **Amortized regime** (`chunk_len = n`, the paper's setting): the
//!    rewind scheme over `InputSet_n` (`T = 2n`), where the codeword
//!    alphabet `q = n + 1` makes the owner codewords `Θ(log n)` symbols
//!    and the per-chunk `(L+n)` owners cost amortizes against `L = n`
//!    protocol rounds. Overhead here is the `Θ(log n)` curve of
//!    Theorem 1.2 — but total work is `Ω(n·T) = Ω(n²)`, so the sweep
//!    stops at `n = 10⁴`.
//! 2. **Scale regime** (fixed `T = 16`): a 16-bit [`Broadcast`] whose
//!    length does not grow with `n`, pushing the party count to 10⁶.
//!    Here the per-chunk owners pass dominates (overhead grows like
//!    `n·W/L` — amortization needs `T = Ω(n)`), and the interesting
//!    rows are feasibility and footprint: wall-clock per trial, the
//!    retained verification-window words (`O(window · n/64)` instead of
//!    the old `O(T · n)` committed transcript), and process peak RSS.
//!
//! `--smoke` caps both sweeps at `n = 10⁴` totals suitable for tier-1 /
//! CI. Trials run on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`); each worker reuses one [`SoaScratch`] arena across
//! its trials, so steady-state simulation performs no per-round heap
//! allocation (pinned by the `party-loop-alloc` lint pass). Wall-clock
//! goes through the sanctioned [`Stopwatch`]; it annotates rows and
//! never feeds back into deterministic state.

use beeps_bench::{f3, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::NoiseModel;
use beeps_core::{RewindSimulator, SimulatorConfig, SoaScratch};
use beeps_metrics::Stopwatch;
use beeps_protocols::{Broadcast, InputSet};
use rand::Rng;

/// Fixed protocol length of the scale regime: `Broadcast` with a
/// 16-bit message runs exactly 16 rounds regardless of `n`, so that
/// sweep varies only the party count.
const WIDTH: usize = 16;

/// Amortized regime: `InputSet_n` with the default `chunk_len = n`, the
/// configuration whose overhead Theorem 1.2 bounds by `Θ(log n)`.
/// Returns per-`n` rows of (n, mean overhead, overhead / log₂ n).
fn amortized_sweep(
    runner: &TrialRunner,
    model: NoiseModel,
    base_seed: u64,
    smoke: bool,
) -> (Table, Vec<(f64, f64)>) {
    let sweep: &[(usize, usize)] = if smoke {
        &[(100, 4), (1_000, 2)]
    } else {
        &[(100, 4), (1_000, 2), (10_000, 1)]
    };
    let mut table = Table::new(
        "E15a: amortized regime (chunk_len = n), InputSet_n at eps=0.1",
        &["n", "log2 n", "overhead", "ovh/log2 n", "rewinds"],
    );
    let mut curve = Vec::new();
    for &(n, trials) in sweep {
        let p = InputSet::new(n);
        let sim = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
        let records = runner.run_with_scratch(
            trial_seed(base_seed, n as u64),
            trials,
            SoaScratch::default,
            |trial, scratch| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<usize> = (0..n).map(|_| input_rng.gen_range(0..2 * n)).collect();
                sim.simulate_with_scratch(&inputs, model, trial.seed, scratch)
                    .ok()
                    .map(|out| (out.stats().overhead(), out.stats().rewinds))
            },
        );
        let mut overhead = 0.0f64;
        let mut rewinds = 0usize;
        let mut counted = 0u32;
        for (o, r) in records.into_iter().flatten() {
            counted += 1;
            overhead += o;
            rewinds += r;
        }
        assert!(counted > 0, "all amortized trials failed at n={n}");
        let mean = overhead / f64::from(counted);
        let log_n = (n as f64).log2();
        curve.push((log_n, mean));
        table.row(&[&n, &f3(log_n), &f3(mean), &f3(mean / log_n), &rewinds]);
    }
    (table, curve)
}

/// Scale regime: fixed-length `Broadcast` with `chunk_len = T = 16`, so
/// chunking stays scale-free while `n` climbs to 10⁶ (the default
/// `chunk_len = n` would mean a million-symbol alphabet). Rows report
/// feasibility and footprint rather than amortized overhead.
///
/// Returns two tables because they live on opposite sides of the
/// determinism contract: the first (overhead, rewinds, retained
/// window words) is seed-deterministic and goes into the JSON log;
/// the second (wall-clock per trial, process peak RSS) is
/// machine-dependent, so it is printed under a NON-DETERMINISTIC
/// banner and *never* serialized — the run log's `summary` line
/// carries `peak_rss_bytes` on the observability side channel.
fn scale_sweep(
    runner: &TrialRunner,
    model: NoiseModel,
    base_seed: u64,
    smoke: bool,
) -> (Table, Table) {
    let sweep: &[(usize, usize)] = if smoke {
        &[(100, 8), (1_000, 4), (10_000, 2)]
    } else {
        &[
            (100, 8),
            (1_000, 4),
            (10_000, 2),
            (100_000, 1),
            (1_000_000, 1),
        ]
    };
    let mut table = Table::new(
        "E15b: scale regime (T = 16 broadcast), eps=0.1 shared noise",
        &["n", "overhead", "rewinds", "window KiB"],
    );
    let mut timing = Table::new(
        "E15b footprint (NON-DETERMINISTIC: wall-clock and RSS, not logged)",
        &["n", "ms/trial", "peak RSS MiB"],
    );
    for &(n, trials) in sweep {
        let p = Broadcast::new(n, 0, WIDTH);
        let config = SimulatorConfig::builder(n)
            .model(model)
            .chunk_len(WIDTH)
            .build();
        let sim = RewindSimulator::new(&p, config);
        let sw = Stopwatch::start();
        let records = runner.run_with_scratch(
            trial_seed(base_seed, n as u64),
            trials,
            SoaScratch::default,
            |trial, scratch| {
                let mut input_rng = trial.sub_rng(0);
                let mut inputs = vec![0usize; n];
                inputs[0] = input_rng.gen_range(0..1usize << WIDTH);
                sim.simulate_with_scratch(&inputs, model, trial.seed, scratch)
                    .ok()
                    .map(|out| {
                        (
                            out.stats().overhead(),
                            out.stats().rewinds,
                            scratch.retained_words(),
                        )
                    })
            },
        );
        let ms_per_trial = sw.elapsed().as_secs_f64() * 1e3 / trials as f64;
        let mut overhead = 0.0f64;
        let mut rewinds = 0usize;
        let mut words = 0usize;
        let mut counted = 0u32;
        for (o, r, w) in records.into_iter().flatten() {
            counted += 1;
            overhead += o;
            rewinds += r;
            words = words.max(w);
        }
        assert!(counted > 0, "all scale trials failed at n={n}");
        table.row(&[
            &n,
            &f3(overhead / f64::from(counted)),
            &rewinds,
            &f3(words as f64 * 8.0 / 1024.0),
        ]);
        timing.row(&[
            &n,
            &f3(ms_per_trial),
            &f3(beeps_observe::clock::peak_rss_bytes() as f64 / (1024.0 * 1024.0)),
        ]);
    }
    (table, timing)
}

pub fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let base_seed = 0xE15u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("fig_scale", base_seed);
    let runner = observation.attach(runner);

    // Scale regime first: peak RSS is a process-wide high-water mark,
    // so its column only reflects the million-party footprint if the
    // (memory-hungrier per party) amortized sweep hasn't run yet.
    let (scale, scale_timing) = scale_sweep(&runner, model, base_seed ^ 0xB00, smoke);
    let (amortized, curve) = amortized_sweep(&runner, model, base_seed, smoke);

    amortized.print();
    scale.print();
    scale_timing.print();

    let (first, last) = (curve[0], curve[curve.len() - 1]);
    println!(
        "Amortized overhead per log2 n stays flat ({} at n={} vs {} at the top of",
        f3(first.1 / first.0),
        100,
        f3(last.1 / last.0),
    );
    println!("the sweep) — Theorem 1.2's Theta(log n) — while the scale regime's");
    println!("windowed transcript + sparse channel keep a million-party trial inside");
    println!("one machine's RAM: retained window words are O(window * n/64), not O(T * n).");

    let mut log = ExperimentLog::new("fig_scale");
    log.field("base_seed", base_seed)
        .field("epsilon", 0.1)
        .field("scale_chunk_len", WIDTH)
        .field("smoke", smoke)
        .table(&amortized)
        .table(&scale);
    log.save();
    observation.finish(None);
}
