//! **Experiment E3 / Figure 3 — the §2 asymmetry.**
//!
//! Side-by-side overhead of the best scheme per noise direction at
//! `ε = 1/3`:
//!
//! * `1→0`-only noise: the constant-overhead checkpoint scheme — flat
//!   in `n`;
//! * `0→1`-only noise: the rewind scheme — grows with `log n`, and
//!   cannot do better by Theorem 1.1.
//!
//! Trials run on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`); both schemes see the *same* inputs within a trial
//! (a paired comparison), and every trial's randomness derives from
//! `(base_seed, n, trial)` alone, so results are thread-count
//! independent.

use beeps_bench::{f3, linear_fit, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{OneToZeroSimulator, RewindSimulator, Simulator, SimulatorConfig};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::InputSet;
use rand::Rng;

pub fn main() {
    let eps = 1.0 / 3.0;
    let trials = 8usize;
    let base_seed = 0xF163u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("fig3_noise_asymmetry", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        "E3: overhead by noise direction at eps=1/3 (InputSet_n)",
        &[
            "n",
            "1->0 overhead",
            "1->0 success",
            "0->1 overhead",
            "0->1 success",
        ],
    );
    let mut xs = Vec::new();
    let mut down_y = Vec::new();
    let mut up_y = Vec::new();
    let mut all_metrics = MetricsRegistry::new();

    for n in [4usize, 8, 16, 32, 64] {
        let protocol = InputSet::new(n);
        let down = NoiseModel::OneSidedOneToZero { epsilon: eps };
        let up = NoiseModel::OneSidedZeroToOne { epsilon: eps };

        let z_sim = OneToZeroSimulator::new(&protocol, 2, 32.0);
        let r_sim = RewindSimulator::new(&protocol, SimulatorConfig::builder(n).model(up).build());

        let (records, m) =
            runner.run_with_metrics(trial_seed(base_seed, n as u64), trials, |trial, metrics| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<usize> = (0..n).map(|_| input_rng.gen_range(0..2 * n)).collect();
                let truth = run_noiseless(&protocol, &inputs);
                let measure = |out: Result<_, _>| {
                    out.ok().map(|o: beeps_core::SimOutcome<_>| {
                        (
                            o.stats().channel_rounds,
                            o.transcript() == truth.transcript(),
                        )
                    })
                };
                (
                    measure(z_sim.simulate_with_metrics(&inputs, down, trial.seed, metrics)),
                    measure(r_sim.simulate_with_metrics(&inputs, up, trial.seed, metrics)),
                )
            });
        all_metrics.merge_from(&m);

        let mut z_rounds = 0usize;
        let mut z_good = 0u32;
        let mut z_done = 0u32;
        let mut r_rounds = 0usize;
        let mut r_good = 0u32;
        let mut r_done = 0u32;
        for (z, r) in &records {
            if let Some((rounds, ok)) = z {
                z_done += 1;
                z_rounds += rounds;
                z_good += u32::from(*ok);
            }
            if let Some((rounds, ok)) = r {
                r_done += 1;
                r_rounds += rounds;
                r_good += u32::from(*ok);
            }
        }
        let t = protocol.length() as f64;
        let z_oh = z_rounds as f64 / f64::from(z_done.max(1)) / t;
        let r_oh = r_rounds as f64 / f64::from(r_done.max(1)) / t;
        table.row(&[
            &n,
            &f3(z_oh),
            &format!("{z_good}/{trials}"),
            &f3(r_oh),
            &format!("{r_good}/{trials}"),
        ]);
        xs.push((n as f64).log2());
        down_y.push(z_oh);
        up_y.push(r_oh);
    }
    table.print();
    let (a_down, _, _) = linear_fit(&xs, &down_y);
    let (a_up, _, _) = linear_fit(&xs, &up_y);
    println!("slope vs log2(n):  1->0 noise: {a_down:.2}   0->1 noise: {a_up:.2}");
    println!("paper: 1->0 admits O(1) overhead (flat slope); 0->1 forces Theta(log n).");

    let mut log = ExperimentLog::new("fig3_noise_asymmetry");
    log.field("base_seed", base_seed)
        .field("trials", trials)
        .field("epsilon", eps)
        .field("slope_one_to_zero", a_down)
        .field("slope_zero_to_one", a_up)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
