//! **Experiment E11 / Table 6 — energy cost of noise resilience.**
//!
//! Energy (the total number of beeps emitted) is the second resource of
//! the beeping literature after rounds. The paper bounds only rounds; this
//! experiment profiles what its schemes cost in energy: per simulated
//! protocol round, how many beeps does each scheme spend, and how does
//! that scale with `n`?
//!
//! Observations the table makes measurable: repetition multiplies the
//! noiseless energy by `R`; the rewind scheme adds the owners phase,
//! whose codeword transmissions dominate its energy; the `1→0` scheme is
//! near-free. (An energy *lower* bound under noise is, to our knowledge,
//! open — this is the repository's "future work" measurement.)

use beeps_bench::{f3, Table};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{OneToZeroSimulator, RepetitionSimulator, RewindSimulator, SimulatorConfig};
use beeps_protocols::InputSet;
use rand::{rngs::StdRng, Rng, SeedableRng};

pub fn main() {
    let trials = 6u64;
    let mut table = Table::new(
        "E11: energy (total beeps) per simulated protocol round, InputSet_n",
        &[
            "n",
            "noiseless",
            "repetition (eps=.1)",
            "rewind (eps=.1)",
            "rewind+cw code (0->1)",
            "1->0 scheme (eps=1/3)",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0xE11E);

    for n in [4usize, 8, 16, 32] {
        let protocol = InputSet::new(n);
        let t = protocol.length() as f64;
        let two = NoiseModel::Correlated { epsilon: 0.1 };
        let up = NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 };
        let down = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
        let config = SimulatorConfig::for_channel(n, two);
        let mut frugal = SimulatorConfig::for_channel(n, up);
        frugal.code_weight = Some((frugal.code_len / 3).max(4));

        let mut base = 0.0;
        let mut rep = 0.0;
        let mut rew = 0.0;
        let mut cw = 0.0;
        let mut z = 0.0;
        let mut counted = 0u32;
        for seed in 0..trials {
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            // Noiseless energy: each party beeps exactly once in InputSet.
            let _ = run_noiseless(&protocol, &inputs);
            base += n as f64;

            let r = RepetitionSimulator::new(&protocol, config.clone())
                .simulate(&inputs, two, seed)
                .expect("fixed length");
            rep += r.stats().energy as f64;

            if let Ok(out) =
                RewindSimulator::new(&protocol, config.clone()).simulate(&inputs, two, seed)
            {
                rew += out.stats().energy as f64;
            }
            if let Ok(out) =
                RewindSimulator::new(&protocol, frugal.clone()).simulate(&inputs, up, seed)
            {
                cw += out.stats().energy as f64;
            }
            if let Ok(out) =
                OneToZeroSimulator::new(&protocol, 2, 32.0).simulate(&inputs, down, seed)
            {
                z += out.stats().energy as f64;
            }
            counted += 1;
        }
        let k = f64::from(counted) * t;
        table.row(&[
            &n,
            &f3(base / k),
            &f3(rep / k),
            &f3(rew / k),
            &f3(cw / k),
            &f3(z / k),
        ]);
    }
    table.print();
    println!("Energy per protocol round: repetition pays ~R beeps per original beep;");
    println!("the rewind scheme's owners-phase codewords dominate; a constant-weight");
    println!("owners code (over the Z channel) trims that cost; the 1->0 scheme stays");
    println!("within a small constant of the noiseless energy.");
}
