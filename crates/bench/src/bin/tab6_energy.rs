//! **Experiment E11 / Table 6 — energy cost of noise resilience.**
//!
//! Energy (the total number of beeps emitted) is the second resource of
//! the beeping literature after rounds. The paper bounds only rounds; this
//! experiment profiles what its schemes cost in energy: per simulated
//! protocol round, how many beeps does each scheme spend, and how does
//! that scale with `n`?
//!
//! Observations the table makes measurable: repetition multiplies the
//! noiseless energy by `R`; the rewind scheme adds the owners phase,
//! whose codeword transmissions dominate its energy; the `1→0` scheme is
//! near-free. (An energy *lower* bound under noise is, to our knowledge,
//! open — this is the repository's "future work" measurement.)
//!
//! Trials run on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`); all four schemes see the same inputs and channel
//! seed within a trial, with randomness derived from
//! `(base_seed, n, trial)` — thread-count independent.

use beeps_bench::{f3, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{
    OneToZeroSimulator, RepetitionSimulator, RewindSimulator, Simulator, SimulatorConfig,
};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::InputSet;
use rand::Rng;

pub fn main() {
    let trials = 6usize;
    let base_seed = 0xE11Eu64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("tab6_energy", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        "E11: energy (total beeps) per simulated protocol round, InputSet_n",
        &[
            "n",
            "noiseless",
            "repetition (eps=.1)",
            "rewind (eps=.1)",
            "rewind+cw code (0->1)",
            "1->0 scheme (eps=1/3)",
        ],
    );
    let mut all_metrics = MetricsRegistry::new();

    for n in [4usize, 8, 16, 32] {
        let protocol = InputSet::new(n);
        let t = protocol.length() as f64;
        let two = NoiseModel::Correlated { epsilon: 0.1 };
        let up = NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 };
        let down = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
        let config = SimulatorConfig::builder(n).model(two).build();
        let mut frugal = SimulatorConfig::builder(n).model(up).build();
        frugal.code_weight = Some((frugal.code_len / 3).max(4));

        let rep_sim = RepetitionSimulator::new(&protocol, config.clone());
        let rew_sim = RewindSimulator::new(&protocol, config);
        let cw_sim = RewindSimulator::new(&protocol, frugal);
        let z_sim = OneToZeroSimulator::new(&protocol, 2, 32.0);

        let (records, m) =
            runner.run_with_metrics(trial_seed(base_seed, n as u64), trials, |trial, metrics| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<usize> = (0..n).map(|_| input_rng.gen_range(0..2 * n)).collect();
                // Noiseless energy: each party beeps exactly once in InputSet.
                let _ = run_noiseless(&protocol, &inputs);
                let energy = |out: Result<beeps_core::SimOutcome<_>, _>| {
                    out.ok().map_or(0.0, |o| o.stats().energy as f64)
                };
                let rep = rep_sim
                    .simulate_with_metrics(&inputs, two, trial.seed, metrics)
                    .expect("fixed length")
                    .stats()
                    .energy as f64;
                (
                    n as f64,
                    rep,
                    energy(rew_sim.simulate_with_metrics(&inputs, two, trial.seed, metrics)),
                    energy(cw_sim.simulate_with_metrics(&inputs, up, trial.seed, metrics)),
                    energy(z_sim.simulate_with_metrics(&inputs, down, trial.seed, metrics)),
                )
            });
        all_metrics.merge_from(&m);

        let mut base = 0.0;
        let mut rep = 0.0;
        let mut rew = 0.0;
        let mut cw = 0.0;
        let mut z = 0.0;
        for (b, r, w, c, d) in &records {
            base += b;
            rep += r;
            rew += w;
            cw += c;
            z += d;
        }
        let k = records.len() as f64 * t;
        table.row(&[
            &n,
            &f3(base / k),
            &f3(rep / k),
            &f3(rew / k),
            &f3(cw / k),
            &f3(z / k),
        ]);
    }
    table.print();
    println!("Energy per protocol round: repetition pays ~R beeps per original beep;");
    println!("the rewind scheme's owners-phase codewords dominate; a constant-weight");
    println!("owners code (over the Z channel) trims that cost; the 1->0 scheme stays");
    println!("within a small constant of the noiseless energy.");

    let mut log = ExperimentLog::new("tab6_energy");
    log.field("base_seed", base_seed)
        .field("trials", trials)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
