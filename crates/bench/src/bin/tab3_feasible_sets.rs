//! **Experiment E7 / Table 3 — Lemma C.5 / Observation C.4.**
//!
//! The entropy argument behind the lower bound: a short transcript cannot
//! rule out many inputs, so the feasible sets `S^i(π)` stay large and the
//! good-player event `𝒢` keeps holding. The table tracks, as the protocol
//! gets longer (more repetitions), the average `Σ_i log₂ |S^i(π)|`
//! (an upper bound on the residual input entropy, Observation C.4), the
//! size of `G_2(π)`, and the frequency of `𝒢` — together with Lemma B.8's
//! prediction for the unique-input count.
//!
//! Sampling runs on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`) with per-sample `(base_seed, r, sample)` seed
//! streams, so the averages are thread-count independent.

use beeps_bench::{f3, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{run_protocol, NoiseModel, Protocol};
use beeps_info::lemmas;
use beeps_lowerbound::ZetaAnalyzer;
use beeps_metrics::MetricsRegistry;
use beeps_protocols::RepeatedInputSet;
use rand::Rng;

pub fn main() {
    let eps = 1.0 / 3.0;
    let n = 12;
    let model = NoiseModel::OneSidedZeroToOne { epsilon: eps };
    let samples = 150usize;
    let base_seed = 0xE7u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("tab3_feasible_sets", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        &format!("E7: feasible sets and good players vs protocol length (n={n}, eps=1/3)"),
        &[
            "r",
            "T",
            "avg sum_i log2|S^i|",
            "residual-entropy floor",
            "avg |G_2|",
            "G freq",
            "avg |G_1|",
        ],
    );
    let full_entropy = n as f64 * (2.0 * n as f64).log2();
    let mut all_metrics = MetricsRegistry::new();

    for r in [1usize, 2, 4, 8] {
        let thr = (((r as f64) * (1.0 + eps) / 2.0).ceil() as usize).clamp(1, r);
        let p = RepeatedInputSet::new(n, r, thr);
        let analyzer = ZetaAnalyzer::new(&p, eps);
        let t_len = p.length();

        let (records, m) = runner.run_with_metrics(
            trial_seed(base_seed, r as u64),
            samples,
            |trial, metrics| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<usize> = (0..n).map(|_| input_rng.gen_range(0..2 * n)).collect();
                let exec = run_protocol(&p, &inputs, model, trial.seed);
                let pi = exec.views().shared().unwrap();
                let report = analyzer.analyze(&inputs, pi).expect("possible");
                let log_sum: f64 = report
                    .feasible_sizes
                    .iter()
                    .map(|&s| (s as f64).log2())
                    .sum();
                let sqrt_n = (n as f64).sqrt();
                let g2 = report
                    .feasible_sizes
                    .iter()
                    .filter(|&&s| s as f64 > sqrt_n)
                    .count();
                let g1 = lemmas::unique_indices(&inputs).len();
                metrics.inc(&format!("exp.feasible.r.{r:03}.samples"), 1);
                if report.event_g {
                    metrics.inc(&format!("exp.feasible.r.{r:03}.event_g"), 1);
                }
                metrics.observe(&format!("exp.feasible.r.{r:03}.g2_size"), g2 as u64);
                (log_sum, g2, g1, report.event_g)
            },
        );
        all_metrics.merge_from(&m);

        let mut sum_log = 0.0f64;
        let mut sum_g2 = 0usize;
        let mut sum_g1 = 0usize;
        let mut g_events = 0u32;
        for (log_sum, g2, g1, event_g) in records {
            sum_log += log_sum;
            sum_g2 += g2;
            sum_g1 += g1;
            g_events += u32::from(event_g);
        }
        // Lemma C.5's information floor: H(X | pi) >= n log(2n) - T, and
        // Observation C.4 bounds H(X | pi) by sum_i log2 |S^i(pi)|.
        let floor = (full_entropy - t_len as f64).max(0.0);
        table.row(&[
            &r,
            &t_len,
            &f3(sum_log / samples as f64),
            &f3(floor),
            &f3(sum_g2 as f64 / samples as f64),
            &f3(f64::from(g_events) / samples as f64),
            &f3(sum_g1 as f64 / samples as f64),
        ]);
    }
    table.print();
    let b8 = lemmas::lemma_b8_bound(n as u64, 2 * n as u64);
    println!(
        "Lemma B.8: Pr[|G_1| <= n/3] <= {:.3}; measured |G_1| stays well above n/3 = {}.",
        b8,
        n / 3
    );
    println!("paper: Lemma C.5 — short transcripts leave Sum_i log|S^i| large, so G_2");
    println!("stays near n and the event G keeps holding — the setting Theorem C.2 needs.");

    let mut log = ExperimentLog::new("tab3_feasible_sets");
    log.field("base_seed", base_seed)
        .field("n", n)
        .field("samples", samples)
        .field("epsilon", eps)
        .field("lemma_b8_bound", b8)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
