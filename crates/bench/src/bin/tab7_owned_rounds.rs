//! **Experiment E12 / Table 7 — pricing the owners phase (§2.1).**
//!
//! Subsection 2.1 of the paper explains why the beeping model is harder
//! than the broadcast model of \[EKS18\]: there, every transcript bit has a
//! pre-assigned owner who can verify it alone; here, ownership of 1s must
//! be *computed* (Algorithm 1). This experiment prices that difference:
//! on a uniquely-owned workload (`RollCall`), it runs both the
//! owned-rounds simulator (no owners phase) and the general rewind
//! simulator (owners phase included) at identical parameters.
//!
//! The gap — entirely the owners phase — is the concrete cost of the
//! beeping model's "anyone may beep anywhere" flexibility.

use beeps_bench::{f3, Table};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{OwnedRoundsSimulator, RewindSimulator, SimulatorConfig};
use beeps_protocols::RollCall;
use rand::{rngs::StdRng, Rng, SeedableRng};

pub fn main() {
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let trials = 8u64;
    let mut table = Table::new(
        "E12: owned-rounds (EKS18-style) vs general rewind scheme on RollCall_n (eps=0.1)",
        &[
            "n",
            "owned overhead",
            "owned ok",
            "general overhead",
            "general ok",
            "owners-phase cost",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0xE12);

    for n in [4usize, 8, 16, 32, 64] {
        let p = RollCall::new(n);
        let config = SimulatorConfig::for_channel(n, model);
        let owned_sim = OwnedRoundsSimulator::new(&p, config.clone());
        let general_sim = RewindSimulator::new(&p, config);

        let mut owned_rounds = 0usize;
        let mut owned_ok = 0u32;
        let mut general_rounds = 0usize;
        let mut general_ok = 0u32;
        let mut counted = 0u32;
        for seed in 0..trials {
            let inputs: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let truth = run_noiseless(&p, &inputs);
            if let (Ok(a), Ok(b)) = (
                owned_sim.simulate(&inputs, model, seed),
                general_sim.simulate(&inputs, model, seed),
            ) {
                counted += 1;
                owned_rounds += a.stats().channel_rounds;
                general_rounds += b.stats().channel_rounds;
                owned_ok += u32::from(a.transcript() == truth.transcript());
                general_ok += u32::from(b.transcript() == truth.transcript());
            }
        }
        let t = p.length() as f64 * f64::from(counted);
        let a = owned_rounds as f64 / t;
        let b = general_rounds as f64 / t;
        table.row(&[
            &n,
            &f3(a),
            &format!("{owned_ok}/{trials}"),
            &f3(b),
            &format!("{general_ok}/{trials}"),
            &format!("{:.1}x", b / a),
        ]);
    }
    table.print();
    println!("Both schemes are exact; the general scheme pays the owners phase on top.");
    println!("paper §2.1: computing owners is what the beeping model's flexibility");
    println!("costs — and Theorem 1.1 shows some such Theta(log n) cost is unavoidable");
    println!("for tasks (like InputSet) whose rounds have no pre-assigned owners.");
}
