//! **Experiment E12 / Table 7 — pricing the owners phase (§2.1).**
//!
//! Subsection 2.1 of the paper explains why the beeping model is harder
//! than the broadcast model of \[EKS18\]: there, every transcript bit has a
//! pre-assigned owner who can verify it alone; here, ownership of 1s must
//! be *computed* (Algorithm 1). This experiment prices that difference:
//! on a uniquely-owned workload (`RollCall`), it runs both the
//! owned-rounds simulator (no owners phase) and the general rewind
//! simulator (owners phase included) at identical parameters.
//!
//! The gap — entirely the owners phase — is the concrete cost of the
//! beeping model's "anyone may beep anywhere" flexibility.
//!
//! Trials run on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`); both simulators see the same inputs and channel
//! seed within a trial, with randomness derived from
//! `(base_seed, n, trial)` — thread-count independent.

use beeps_bench::{f3, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{OwnedRoundsSimulator, RewindSimulator, Simulator, SimulatorConfig};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::RollCall;
use rand::Rng;

pub fn main() {
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let trials = 8usize;
    let base_seed = 0xE12u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("tab7_owned_rounds", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        "E12: owned-rounds (EKS18-style) vs general rewind scheme on RollCall_n (eps=0.1)",
        &[
            "n",
            "owned overhead",
            "owned ok",
            "general overhead",
            "general ok",
            "owners-phase cost",
        ],
    );
    let mut all_metrics = MetricsRegistry::new();

    for n in [4usize, 8, 16, 32, 64] {
        let p = RollCall::new(n);
        let config = SimulatorConfig::builder(n).model(model).build();
        let owned_sim = OwnedRoundsSimulator::new(&p, config.clone());
        let general_sim = RewindSimulator::new(&p, config);

        let (records, m) =
            runner.run_with_metrics(trial_seed(base_seed, n as u64), trials, |trial, metrics| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<bool> = (0..n).map(|_| input_rng.gen_bool(0.5)).collect();
                let truth = run_noiseless(&p, &inputs);
                match (
                    owned_sim.simulate_with_metrics(&inputs, model, trial.seed, metrics),
                    general_sim.simulate_with_metrics(&inputs, model, trial.seed, metrics),
                ) {
                    (Ok(a), Ok(b)) => Some((
                        a.stats().channel_rounds,
                        a.transcript() == truth.transcript(),
                        b.stats().channel_rounds,
                        b.transcript() == truth.transcript(),
                    )),
                    _ => None,
                }
            });
        all_metrics.merge_from(&m);

        let mut owned_rounds = 0usize;
        let mut owned_ok = 0u32;
        let mut general_rounds = 0usize;
        let mut general_ok = 0u32;
        let mut counted = 0u32;
        for (a_rounds, a_ok, b_rounds, b_ok) in records.into_iter().flatten() {
            counted += 1;
            owned_rounds += a_rounds;
            general_rounds += b_rounds;
            owned_ok += u32::from(a_ok);
            general_ok += u32::from(b_ok);
        }
        let t = p.length() as f64 * f64::from(counted);
        let a = owned_rounds as f64 / t;
        let b = general_rounds as f64 / t;
        table.row(&[
            &n,
            &f3(a),
            &format!("{owned_ok}/{trials}"),
            &f3(b),
            &format!("{general_ok}/{trials}"),
            &format!("{:.1}x", b / a),
        ]);
    }
    table.print();
    println!("Both schemes are exact; the general scheme pays the owners phase on top.");
    println!("paper §2.1: computing owners is what the beeping model's flexibility");
    println!("costs — and Theorem 1.1 shows some such Theta(log n) cost is unavoidable");
    println!("for tasks (like InputSet) whose rounds have no pre-assigned owners.");

    let mut log = ExperimentLog::new("tab7_owned_rounds");
    log.field("base_seed", base_seed)
        .field("trials", trials)
        .field("epsilon", 0.1)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
