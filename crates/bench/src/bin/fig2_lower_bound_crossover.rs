//! **Experiment E2 / Figure 2 — Theorem 1.1 (lower bound).**
//!
//! The empirical face of `Ω(log n)`: the minimum per-round overhead the
//! trivial `InputSet_n` protocol needs to reach 90% success over the
//! one-sided `ε = 1/3` channel, both exactly (binomial tails) and as
//! measured through the actual simulator. The series grows log-linearly
//! in `n` — reducing the overhead below `Θ(log n)` is impossible for any
//! scheme by Theorem C.1.
//!
//! The Monte Carlo column runs on the shared [`TrialRunner`]
//! (`--threads N` / `BEEPS_THREADS`); every trial draws its inputs and
//! channel noise from its own `(base_seed, n, trial)` streams, so the
//! measured rates are identical for any thread count.

use beeps_bench::{f3, linear_fit, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_lowerbound::{min_repetitions_exact, MeasuredCrossover};
use beeps_metrics::MetricsRegistry;

pub fn main() {
    let eps = 1.0 / 3.0;
    let target = 0.9;
    let trials = 100usize;
    let base_seed = 0xF162u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("fig2_lower_bound_crossover", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        &format!(
            "E2: minimum repetition overhead for InputSet_n, one-sided eps=1/3, target {target}"
        ),
        &[
            "n",
            "min reps (exact)",
            "predicted success",
            "measured success",
            "reps/log2(n)",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut all_metrics = MetricsRegistry::new();

    for n in [4usize, 8, 16, 32, 64, 128, 256, 512] {
        let point = min_repetitions_exact(n, eps, target);
        // Monte Carlo through the real simulator for moderate n.
        let measured = if n <= 64 {
            let experiment = MeasuredCrossover::new(n, point.min_repetitions, eps);
            let (records, m) = runner.run_with_metrics(
                trial_seed(base_seed, n as u64),
                trials,
                |trial, metrics| {
                    let mut input_rng = trial.sub_rng(0);
                    let ok = experiment.trial(&mut input_rng, trial.seed);
                    metrics.inc(&format!("exp.crossover.n.{n:03}.trials"), 1);
                    if ok {
                        metrics.inc(&format!("exp.crossover.n.{n:03}.successes"), 1);
                    }
                    ok
                },
            );
            all_metrics.merge_from(&m);
            let good = records.iter().filter(|&&ok| ok).count();
            f3(good as f64 / trials as f64)
        } else {
            "-".to_owned()
        };
        let log_n = (n as f64).log2();
        table.row(&[
            &n,
            &point.min_repetitions,
            &f3(point.success),
            &measured,
            &f3(point.min_repetitions as f64 / log_n),
        ]);
        xs.push(log_n);
        ys.push(point.min_repetitions as f64);
    }
    table.print();
    let (a, b, r2) = linear_fit(&xs, &ys);
    println!("fit: min reps ~= {a:.2} * log2(n) + {b:.2}   (r^2 = {r2:.3})");
    println!("paper: Theorem 1.1/C.1 — Omega(log n) overhead is necessary for InputSet_n.");

    let mut log = ExperimentLog::new("fig2_lower_bound_crossover");
    log.field("base_seed", base_seed)
        .field("trials", trials)
        .field("epsilon", eps)
        .field("target", target)
        .field("fit_slope", a)
        .field("fit_intercept", b)
        .field("fit_r2", r2)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
