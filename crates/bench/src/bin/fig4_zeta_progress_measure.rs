//! **Experiment E5 / Figure 4 — Theorem C.2 (the ζ ceiling).**
//!
//! Computes the paper's progress measure `ζ(x, π)` exactly on sampled
//! executions of the repetition-coded trivial protocol
//! (`T = 2n·r` rounds) and compares the largest observed value with
//! Theorem C.2's ceiling `(4/n)·(1/ε)^{4T/n}`.
//!
//! The mechanism on display: short protocols *cannot* concentrate
//! probability on the true input against its neighbors (small ζ ceiling),
//! while Theorem C.3 shows a correct protocol needs
//! `E[ζ | 𝒢] ≥ n^{-3/4}` — so correctness requires the ceiling, and hence
//! `T`, to be large: `T = Ω(n log n)`.
//!
//! Sampling runs on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`); each sample's inputs and channel noise derive from
//! `(base_seed, r, sample)` alone, so the table is thread-count
//! independent.

use beeps_bench::{f3, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{run_protocol, NoiseModel, Protocol};
use beeps_lowerbound::ZetaAnalyzer;
use beeps_metrics::MetricsRegistry;
use beeps_protocols::RepeatedInputSet;
use rand::Rng;

pub fn main() {
    let eps = 1.0 / 3.0;
    let n = 8;
    let model = NoiseModel::OneSidedZeroToOne { epsilon: eps };
    let samples = 120usize;
    let base_seed = 0xF164u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("fig4_zeta_progress_measure", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        &format!(
            "E5: zeta on sampled executions vs Theorem C.2 ceiling (n={n}, eps=1/3, {samples} samples)"
        ),
        &["r", "T", "max zeta | G", "mean zeta | G", "C.2 ceiling", "C.3 floor", "G freq"],
    );
    let needed = (n as f64).powf(-0.75);
    let mut all_metrics = MetricsRegistry::new();

    for r in [1usize, 2, 4, 8, 16] {
        let thr = ((r as f64) * (1.0 + eps) / 2.0).ceil() as usize;
        let p = RepeatedInputSet::new(n, r, thr.clamp(1, r));
        let t_len = p.length();
        let analyzer = ZetaAnalyzer::new(&p, eps);
        let ceiling = analyzer.theorem_c2_bound(t_len);

        let (records, m) = runner.run_with_metrics(
            trial_seed(base_seed, r as u64),
            samples,
            |trial, metrics| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<usize> = (0..n).map(|_| input_rng.gen_range(0..2 * n)).collect();
                let exec = run_protocol(&p, &inputs, model, trial.seed);
                let pi = exec.views().shared().expect("one-sided noise is shared");
                metrics.inc(&format!("exp.zeta.r.{r:03}.samples"), 1);
                let zeta = analyzer
                    .analyze(&inputs, pi)
                    .filter(|report| report.event_g)
                    .map(|report| report.zeta);
                if zeta.is_some() {
                    metrics.inc(&format!("exp.zeta.r.{r:03}.event_g"), 1);
                }
                zeta
            },
        );
        all_metrics.merge_from(&m);

        let mut max_zeta: f64 = 0.0;
        let mut sum_zeta = 0.0f64;
        let mut g_count = 0u32;
        for zeta in records.into_iter().flatten() {
            g_count += 1;
            sum_zeta += zeta;
            max_zeta = max_zeta.max(zeta);
        }
        let mean = if g_count > 0 {
            sum_zeta / f64::from(g_count)
        } else {
            0.0
        };
        table.row(&[
            &r,
            &t_len,
            &format!("{max_zeta:.3e}"),
            &format!("{mean:.3e}"),
            &format!("{ceiling:.3e}"),
            &format!("{needed:.3e}"),
            &f3(f64::from(g_count) / samples as f64),
        ]);
    }
    table.print();
    println!("paper: Theorem C.2 — zeta <= (4/n)(1/eps)^(4T/n) whenever event G holds;");
    println!("Theorem C.3 — correct protocols need E[zeta | G] >= n^(-3/4) (the floor");
    println!("column), so protocols whose ceiling sits below the floor cannot be correct.");
    println!();

    // Theorem C.3 audit: measure every quantity in the inequality
    // E[zeta | G] >= (Pr(C) - Pr(!G))^2 / sqrt(n) on both ends of the
    // correctness spectrum.
    let mut audit_table = Table::new(
        "E5b: Theorem C.3 audit — E[zeta|G] >= (Pr(C) - Pr(!G))^2 / sqrt(n)",
        &["r", "Pr(C)", "Pr(!G)", "E[zeta|G]", "RHS", "holds"],
    );
    let reference = beeps_protocols::InputSet::new(n);
    for r in [1usize, 8, 24] {
        let thr = (((r as f64) * (1.0 + eps) / 2.0).ceil() as usize).clamp(1, r);
        let p = RepeatedInputSet::new(n, r, thr);
        let a = beeps_lowerbound::theorem_c3_audit(
            &p,
            eps,
            100,
            0xC3 + r as u64,
            |rng| (0..n).map(|_| rng.gen_range(0..2 * n)).collect(),
            |xs| reference.answer(xs),
        );
        audit_table.row(&[
            &r,
            &f3(a.pr_correct),
            &f3(a.pr_not_g),
            &f3(a.mean_zeta_given_g),
            &f3(a.rhs),
            &(if a.holds { "yes" } else { "NO" }),
        ]);
    }
    audit_table.print();
    println!("Correctness and zeta rise together: the proof's central correlation.");

    let mut log = ExperimentLog::new("fig4_zeta_progress_measure");
    log.field("base_seed", base_seed)
        .field("n", n)
        .field("samples", samples)
        .field("epsilon", eps)
        .field("c3_floor", needed)
        .table(&table)
        .table(&audit_table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
