//! **Experiment E6 / Table 2 — the A.1.2 reduction.**
//!
//! The composite channel (one-sided `ε = 1/3` + shared-coin downgrade
//! with probability 1/4) must be statistically indistinguishable from a
//! native correlated `ε = 1/4` channel. The table reports the measured
//! flip rates in both directions and the end-to-end failure rate of the
//! naked `InputSet_n` protocol over both channels.
//!
//! The big sampling loops are sharded across the shared [`TrialRunner`]
//! (`--threads N` / `BEEPS_THREADS`): each shard owns its own channel
//! instance seeded from `(base_seed, shard)`, and shard counts are
//! summed in index order — so every reported rate is thread-count
//! independent.

use beeps_bench::{f3, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{
    run_noiseless, run_protocol, run_protocol_over, Channel, NoiseModel, Protocol,
    ReducedTwoSidedChannel, StochasticChannel,
};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::InputSet;
use rand::Rng;

/// Transmissions per flip-rate shard; 80 shards × 5000 = 400k total.
const FLIP_SHARDS: usize = 80;
const FLIP_PER_SHARD: u32 = 5_000;

fn flip_rate(
    runner: &TrialRunner,
    base_seed: u64,
    mk: impl Fn(u64) -> Box<dyn Channel> + Sync,
    true_or: bool,
    key: &str,
    all_metrics: &mut MetricsRegistry,
) -> f64 {
    let (records, m) = runner.run_with_metrics(base_seed, FLIP_SHARDS, |trial, metrics| {
        let mut ch = mk(trial.seed);
        let mut flips = 0u32;
        for _ in 0..FLIP_PER_SHARD {
            if ch.transmit(true_or).shared() != Some(true_or) {
                flips += 1;
            }
        }
        metrics.inc(
            &format!("exp.reduction.{key}.transmissions"),
            u64::from(FLIP_PER_SHARD),
        );
        metrics.inc(&format!("exp.reduction.{key}.flips"), u64::from(flips));
        flips
    });
    all_metrics.merge_from(&m);
    let flips: u32 = records.iter().sum();
    f64::from(flips) / (FLIP_SHARDS as f64 * f64::from(FLIP_PER_SHARD))
}

pub fn main() {
    let runner = TrialRunner::from_cli();
    let base_seed = 0xE6u64;
    let observation = Observation::from_cli("tab2_one_sided_reduction", base_seed);
    let runner = observation.attach(runner);
    let trials = FLIP_SHARDS * FLIP_PER_SHARD as usize;
    let mut table = Table::new(
        "E6: reduced channel (A.1.2) vs native eps=1/4 channel",
        &[
            "quantity",
            "reduced (1/3 one-sided + coin)",
            "native eps=1/4",
            "paper",
        ],
    );
    let mut all_metrics = MetricsRegistry::new();

    let reduced = |seed| -> Box<dyn Channel> { Box::new(ReducedTwoSidedChannel::new(2, seed)) };
    let native = |seed| -> Box<dyn Channel> {
        Box::new(StochasticChannel::new(
            2,
            NoiseModel::Correlated { epsilon: 0.25 },
            seed,
        ))
    };

    table.row(&[
        &"P[flip | OR=1]",
        &f3(flip_rate(
            &runner,
            trial_seed(base_seed, 1),
            reduced,
            true,
            "reduced.or1",
            &mut all_metrics,
        )),
        &f3(flip_rate(
            &runner,
            trial_seed(base_seed, 2),
            native,
            true,
            "native.or1",
            &mut all_metrics,
        )),
        &"0.250",
    ]);
    table.row(&[
        &"P[flip | OR=0]",
        &f3(flip_rate(
            &runner,
            trial_seed(base_seed, 3),
            reduced,
            false,
            "reduced.or0",
            &mut all_metrics,
        )),
        &f3(flip_rate(
            &runner,
            trial_seed(base_seed, 4),
            native,
            false,
            "native.or0",
            &mut all_metrics,
        )),
        &"0.250",
    ]);

    // End-to-end: failure rates of the naked protocol over both channels.
    let n = 8;
    let p = InputSet::new(n);
    let runs = 400usize;
    let (records, m) = runner.run_with_metrics(trial_seed(base_seed, 5), runs, |trial, metrics| {
        let mut input_rng = trial.sub_rng(0);
        let inputs: Vec<usize> = (0..n).map(|_| input_rng.gen_range(0..2 * n)).collect();
        let expect = run_noiseless(&p, &inputs).outputs()[0].clone();
        let mut ch = ReducedTwoSidedChannel::new(n, trial.seed);
        let wrong_reduced = run_protocol_over(&p, &inputs, &mut ch).outputs()[0] != expect;
        let wrong_native = run_protocol(
            &p,
            &inputs,
            NoiseModel::Correlated { epsilon: 0.25 },
            trial.seed,
        )
        .outputs()[0]
            != expect;
        metrics.inc("exp.reduction.end_to_end.runs", 1);
        if wrong_reduced {
            metrics.inc("exp.reduction.end_to_end.wrong.reduced", 1);
        }
        if wrong_native {
            metrics.inc("exp.reduction.end_to_end.wrong.native", 1);
        }
        (wrong_reduced, wrong_native)
    });
    all_metrics.merge_from(&m);
    let wrong_reduced = records.iter().filter(|(r, _)| *r).count();
    let wrong_native = records.iter().filter(|(_, w)| *w).count();
    table.row(&[
        &format!("naked InputSet_{n} failure rate"),
        &f3(wrong_reduced as f64 / runs as f64),
        &f3(wrong_native as f64 / runs as f64),
        &"equal",
    ]);

    // Rigorous distributional check: chi-square homogeneity over the four
    // (sent, received) outcome cells of each channel, sharded the same way.
    let shards = 100usize;
    let cells_per_shard = 2_000u32;
    let shard_counts = runner.run(trial_seed(base_seed, 6), shards, |trial| {
        let mut counts_reduced = [0u64; 4];
        let mut counts_native = [0u64; 4];
        let mut chr = ReducedTwoSidedChannel::new(2, trial_seed(trial.seed, 0));
        let mut chn = StochasticChannel::new(
            2,
            NoiseModel::Correlated { epsilon: 0.25 },
            trial_seed(trial.seed, 1),
        );
        for i in 0..cells_per_shard {
            let sent = i % 2 == 0;
            let hr = chr.transmit(sent).shared().unwrap();
            let hn = chn.transmit(sent).shared().unwrap();
            counts_reduced[usize::from(sent) * 2 + usize::from(hr)] += 1;
            counts_native[usize::from(sent) * 2 + usize::from(hn)] += 1;
        }
        (counts_reduced, counts_native)
    });
    let mut counts_reduced = [0u64; 4];
    let mut counts_native = [0u64; 4];
    for (cr, cn) in &shard_counts {
        for k in 0..4 {
            counts_reduced[k] += cr[k];
            counts_native[k] += cn[k];
        }
    }
    let chi = beeps_info::stats::chi_square_homogeneity(&counts_reduced, &counts_native);
    table.row(&[
        &"chi-square homogeneity (4 cells)",
        &format!("stat {:.2}", chi.statistic),
        &format!("dof {}", chi.dof),
        &(if chi.consistent_at_999 {
            "consistent @99.9%"
        } else {
            "REJECTED"
        }),
    ]);
    table.print();
    println!("paper: A.1.2 — a lower bound against the one-sided 1/3 channel transfers");
    println!("to the two-sided 1/4 channel because the parties can synthesize the");
    println!("latter from the former with shared randomness.");
    let _ = p.length();

    let mut log = ExperimentLog::new("tab2_one_sided_reduction");
    log.field("base_seed", base_seed)
        .field("flip_transmissions", trials)
        .field("end_to_end_runs", runs)
        .field("chi_square_cells", shards * cells_per_shard as usize)
        .field("chi_square_stat", chi.statistic)
        .field("chi_square_consistent", chi.consistent_at_999)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
