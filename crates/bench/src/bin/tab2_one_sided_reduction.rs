//! **Experiment E6 / Table 2 — the A.1.2 reduction.**
//!
//! The composite channel (one-sided `ε = 1/3` + shared-coin downgrade
//! with probability 1/4) must be statistically indistinguishable from a
//! native correlated `ε = 1/4` channel. The table reports the measured
//! flip rates in both directions and the end-to-end failure rate of the
//! naked `InputSet_n` protocol over both channels.

use beeps_bench::{f3, Table};
use beeps_channel::{
    run_noiseless, run_protocol, run_protocol_over, Channel, NoiseModel, Protocol,
    ReducedTwoSidedChannel, StochasticChannel,
};
use beeps_protocols::InputSet;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn flip_rate(mk: impl Fn(u64) -> Box<dyn Channel>, true_or: bool, trials: u32) -> f64 {
    let mut ch = mk(42);
    let mut flips = 0u32;
    for _ in 0..trials {
        if ch.transmit(true_or).shared() != Some(true_or) {
            flips += 1;
        }
    }
    f64::from(flips) / f64::from(trials)
}

pub fn main() {
    let trials = 400_000u32;
    let mut table = Table::new(
        "E6: reduced channel (A.1.2) vs native eps=1/4 channel",
        &[
            "quantity",
            "reduced (1/3 one-sided + coin)",
            "native eps=1/4",
            "paper",
        ],
    );

    let reduced = |seed| -> Box<dyn Channel> { Box::new(ReducedTwoSidedChannel::new(2, seed)) };
    let native = |seed| -> Box<dyn Channel> {
        Box::new(StochasticChannel::new(
            2,
            NoiseModel::Correlated { epsilon: 0.25 },
            seed,
        ))
    };

    table.row(&[
        &"P[flip | OR=1]",
        &f3(flip_rate(reduced, true, trials)),
        &f3(flip_rate(native, true, trials)),
        &"0.250",
    ]);
    table.row(&[
        &"P[flip | OR=0]",
        &f3(flip_rate(reduced, false, trials)),
        &f3(flip_rate(native, false, trials)),
        &"0.250",
    ]);

    // End-to-end: failure rates of the naked protocol over both channels.
    let n = 8;
    let p = InputSet::new(n);
    let runs = 400u64;
    let mut rng = StdRng::seed_from_u64(0xE6);
    let mut wrong_reduced = 0u32;
    let mut wrong_native = 0u32;
    for seed in 0..runs {
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        let expect = run_noiseless(&p, &inputs).outputs()[0].clone();
        let mut ch = ReducedTwoSidedChannel::new(n, seed);
        if run_protocol_over(&p, &inputs, &mut ch).outputs()[0] != expect {
            wrong_reduced += 1;
        }
        if run_protocol(&p, &inputs, NoiseModel::Correlated { epsilon: 0.25 }, seed).outputs()[0]
            != expect
        {
            wrong_native += 1;
        }
    }
    table.row(&[
        &format!("naked InputSet_{n} failure rate"),
        &f3(f64::from(wrong_reduced) / runs as f64),
        &f3(f64::from(wrong_native) / runs as f64),
        &"equal",
    ]);

    // Rigorous distributional check: chi-square homogeneity over the four
    // (sent, received) outcome cells of each channel.
    let cells = 200_000u32;
    let mut counts_reduced = [0u64; 4];
    let mut counts_native = [0u64; 4];
    let mut chr = ReducedTwoSidedChannel::new(2, 0xC51);
    let mut chn = StochasticChannel::new(2, NoiseModel::Correlated { epsilon: 0.25 }, 0xC52);
    for i in 0..cells {
        let sent = i % 2 == 0;
        let hr = chr.transmit(sent).shared().unwrap();
        let hn = chn.transmit(sent).shared().unwrap();
        counts_reduced[usize::from(sent) * 2 + usize::from(hr)] += 1;
        counts_native[usize::from(sent) * 2 + usize::from(hn)] += 1;
    }
    let chi = beeps_info::stats::chi_square_homogeneity(&counts_reduced, &counts_native);
    table.row(&[
        &"chi-square homogeneity (4 cells)",
        &format!("stat {:.2}", chi.statistic),
        &format!("dof {}", chi.dof),
        &(if chi.consistent_at_999 {
            "consistent @99.9%"
        } else {
            "REJECTED"
        }),
    ]);
    table.print();
    println!("paper: A.1.2 — a lower bound against the one-sided 1/3 channel transfers");
    println!("to the two-sided 1/4 channel because the parties can synthesize the");
    println!("latter from the former with shared randomness.");
    let _ = p.length();
}
