//! Runs every experiment in `EXPERIMENTS.md` (E1–E14) back to back —
//! the single-command reproduction of the whole paper:
//!
//! ```text
//! cargo run --release -p beeps-bench --bin all_experiments
//! ```
//!
//! Pass `--threads N` (or set `BEEPS_THREADS`) to fan trials out across
//! workers; output is bitwise identical at any thread count. Expect
//! ~15 s of wall-clock in release mode on one core; each experiment's
//! table matches its standalone binary exactly (same seeds) and is also
//! written to `target/experiments/<id>.json`.

#[path = "fig1_upper_bound_overhead.rs"]
mod fig1;
#[path = "fig2_lower_bound_crossover.rs"]
mod fig2;
#[path = "fig3_noise_asymmetry.rs"]
mod fig3;
#[path = "fig4_zeta_progress_measure.rs"]
mod fig4;
#[path = "fig5_independent_noise.rs"]
mod fig5;
#[path = "fig6_phase_breakdown.rs"]
mod fig6;
#[path = "fig7_chunk_sweep.rs"]
mod fig7;
#[path = "tab1_owners_phase.rs"]
mod tab1;
#[path = "tab2_one_sided_reduction.rs"]
mod tab2;
#[path = "tab3_feasible_sets.rs"]
mod tab3;
#[path = "tab4_repetition_scheme.rs"]
mod tab4;
#[path = "tab5_scheme_ablation.rs"]
mod tab5;
#[path = "tab6_energy.rs"]
mod tab6;
#[path = "tab7_owned_rounds.rs"]
mod tab7;

fn main() {
    let experiments: &[(&str, fn())] = &[
        ("E1 (fig1_upper_bound_overhead)", fig1::main),
        ("E2 (fig2_lower_bound_crossover)", fig2::main),
        ("E3 (fig3_noise_asymmetry)", fig3::main),
        ("E4 (tab1_owners_phase)", tab1::main),
        ("E5 (fig4_zeta_progress_measure)", fig4::main),
        ("E6 (tab2_one_sided_reduction)", tab2::main),
        ("E7 (tab3_feasible_sets)", tab3::main),
        ("E8 (fig5_independent_noise)", fig5::main),
        ("E9 (tab4_repetition_scheme)", tab4::main),
        ("E10 (tab5_scheme_ablation)", tab5::main),
        ("E11 (tab6_energy)", tab6::main),
        ("E12 (tab7_owned_rounds)", tab7::main),
        ("E13 (fig6_phase_breakdown)", fig6::main),
        ("E14 (fig7_chunk_sweep)", fig7::main),
    ];
    for (i, (name, run)) in experiments.iter().enumerate() {
        println!(
            "================ [{} / {}] {name} ================\n",
            i + 1,
            experiments.len()
        );
        let sw = beeps_metrics::Stopwatch::start();
        run();
        println!("(took {:.1}s)\n", sw.elapsed().as_secs_f64());
    }
    println!("All {} experiments complete.", experiments.len());
}
