//! **Experiment E13 / Figure 6 — where the `log n` goes.**
//!
//! Splits the rewind scheme's channel rounds into its three phases —
//! chunk simulation (`L·R`), finding owners (`(L+n)·W`), verification
//! (`V`) — across `n`. The owners phase dominates and its share *grows*,
//! because its per-chunk cost `(L+n)·W` carries the codeword length
//! `W = Θ(log n)` against the chunk's `L·R` with the same `Θ(log n)`
//! repetition factor but no `(L+n)` multiplier.
//!
//! Read together with E12 (which removes the owners phase on uniquely
//! owned workloads), this locates the paper's `Θ(log n)` premium
//! concretely in the owner-computation rounds.
//!
//! Trials run on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`) with per-trial `(base_seed, n, trial)` seed streams,
//! so the breakdown is thread-count independent.

use beeps_bench::{f3, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{NoiseModel, Protocol};
use beeps_core::{RewindSimulator, Simulator, SimulatorConfig};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::InputSet;
use rand::Rng;

pub fn main() {
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let trials = 6usize;
    let base_seed = 0xE13u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("fig6_phase_breakdown", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        "E13: rewind-scheme rounds by phase, InputSet_n at eps=0.1 (per protocol round)",
        &["n", "chunk sim", "owners", "verify", "owners share"],
    );
    let mut all_metrics = MetricsRegistry::new();

    for n in [4usize, 8, 16, 32, 64] {
        let p = InputSet::new(n);
        let sim = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());

        let (records, m) =
            runner.run_with_metrics(trial_seed(base_seed, n as u64), trials, |trial, metrics| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<usize> = (0..n).map(|_| input_rng.gen_range(0..2 * n)).collect();
                sim.simulate_with_metrics(&inputs, model, trial.seed, metrics)
                    .ok()
                    .map(|out| {
                        (
                            out.stats().phase_rounds.chunk,
                            out.stats().phase_rounds.owners,
                            out.stats().phase_rounds.verify,
                        )
                    })
            });
        all_metrics.merge_from(&m);

        let mut chunk = 0usize;
        let mut owners = 0usize;
        let mut verify = 0usize;
        let mut counted = 0u32;
        for (c, o, v) in records.into_iter().flatten() {
            counted += 1;
            chunk += c;
            owners += o;
            verify += v;
        }
        let k = f64::from(counted) * p.length() as f64;
        let share = owners as f64 / (chunk + owners + verify) as f64;
        table.row(&[
            &n,
            &f3(chunk as f64 / k),
            &f3(owners as f64 / k),
            &f3(verify as f64 / k),
            &format!("{:.0}%", share * 100.0),
        ]);
    }
    table.print();
    println!("The owners phase (Algorithm 1's codeword exchange) dominates the cost —");
    println!("the concrete home of the Theta(log n) premium that Theorem 1.1 proves");
    println!("unavoidable and experiment E12 shows disappearing on pre-owned workloads.");

    let mut log = ExperimentLog::new("fig6_phase_breakdown");
    log.field("base_seed", base_seed)
        .field("trials", trials)
        .field("epsilon", 0.1)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
