//! **Experiment E13 / Figure 6 — where the `log n` goes.**
//!
//! Splits the rewind scheme's channel rounds into its three phases —
//! chunk simulation (`L·R`), finding owners (`(L+n)·W`), verification
//! (`V`) — across `n`. The owners phase dominates and its share *grows*,
//! because its per-chunk cost `(L+n)·W` carries the codeword length
//! `W = Θ(log n)` against the chunk's `L·R` with the same `Θ(log n)`
//! repetition factor but no `(L+n)` multiplier.
//!
//! Read together with E12 (which removes the owners phase on uniquely
//! owned workloads), this locates the paper's `Θ(log n)` premium
//! concretely in the owner-computation rounds.

use beeps_bench::{f3, Table};
use beeps_channel::{NoiseModel, Protocol};
use beeps_core::{RewindSimulator, SimulatorConfig};
use beeps_protocols::InputSet;
use rand::{rngs::StdRng, Rng, SeedableRng};

pub fn main() {
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let trials = 6u64;
    let mut table = Table::new(
        "E13: rewind-scheme rounds by phase, InputSet_n at eps=0.1 (per protocol round)",
        &["n", "chunk sim", "owners", "verify", "owners share"],
    );
    let mut rng = StdRng::seed_from_u64(0xE13);

    for n in [4usize, 8, 16, 32, 64] {
        let p = InputSet::new(n);
        let sim = RewindSimulator::new(&p, SimulatorConfig::for_channel(n, model));
        let mut chunk = 0usize;
        let mut owners = 0usize;
        let mut verify = 0usize;
        let mut counted = 0u32;
        for seed in 0..trials {
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            if let Ok(out) = sim.simulate(&inputs, model, seed) {
                counted += 1;
                chunk += out.stats().phase_rounds.chunk;
                owners += out.stats().phase_rounds.owners;
                verify += out.stats().phase_rounds.verify;
            }
        }
        let k = f64::from(counted) * p.length() as f64;
        let share = owners as f64 / (chunk + owners + verify) as f64;
        table.row(&[
            &n,
            &f3(chunk as f64 / k),
            &f3(owners as f64 / k),
            &f3(verify as f64 / k),
            &format!("{:.0}%", share * 100.0),
        ]);
    }
    table.print();
    println!("The owners phase (Algorithm 1's codeword exchange) dominates the cost —");
    println!("the concrete home of the Theta(log n) premium that Theorem 1.1 proves");
    println!("unavoidable and experiment E12 shows disappearing on pre-owned workloads.");
}
