//! **Experiment E10 / Table 5 — scheme ablation.**
//!
//! Two full implementations of Theorem 1.2 live in this repository:
//!
//! * the **rewind** scheme (verify-before-commit, pop one chunk per
//!   failure — the engineering-simplified discipline);
//! * the **hierarchical** scheme (Appendix D.2 verbatim: provisional
//!   commits, binary-counter-scheduled progress checks that binary-search
//!   the longest correct prefix).
//!
//! Both must deliver the same `O(log n)` overhead and near-1 success; the
//! table compares overhead, rewind/truncation counts, and success side by
//! side across `n` and noise rates — the design-choice ablation called
//! out in `DESIGN.md`.

use beeps_bench::{f3, Table};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{HierarchicalSimulator, RewindSimulator, SimulatorConfig};
use beeps_protocols::InputSet;
use rand::{rngs::StdRng, Rng, SeedableRng};

struct Cell {
    overhead: f64,
    repairs: f64,
    good: u32,
}

fn run_scheme<F>(n: usize, _model: NoiseModel, trials: u64, rng: &mut StdRng, mut sim: F) -> Cell
where
    F: FnMut(&[usize], u64) -> Option<(Vec<bool>, usize, usize)>,
{
    let protocol = InputSet::new(n);
    let mut rounds = 0usize;
    let mut repairs = 0usize;
    let mut good = 0u32;
    let mut done = 0u32;
    for seed in 0..trials {
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        let truth = run_noiseless(&protocol, &inputs);
        if let Some((transcript, channel_rounds, rewinds)) = sim(&inputs, seed) {
            done += 1;
            rounds += channel_rounds;
            repairs += rewinds;
            if transcript == truth.transcript() {
                good += 1;
            }
        }
    }
    Cell {
        overhead: rounds as f64 / done.max(1) as f64 / protocol.length() as f64,
        repairs: repairs as f64 / done.max(1) as f64,
        good,
    }
}

pub fn main() {
    let trials = 8u64;
    let mut table = Table::new(
        "E10: rewind vs hierarchical (Appendix D.2) implementations of Theorem 1.2",
        &[
            "n",
            "eps",
            "rewind oh",
            "rewind repairs",
            "rewind ok",
            "hier oh",
            "hier repairs",
            "hier ok",
        ],
    );

    for &(n, eps) in &[
        (8usize, 0.05f64),
        (8, 0.15),
        (16, 0.05),
        (16, 0.15),
        (32, 0.1),
    ] {
        let model = NoiseModel::Correlated { epsilon: eps };
        let config = SimulatorConfig::for_channel(n, model);
        let protocol = InputSet::new(n);
        let rewind = RewindSimulator::new(&protocol, config.clone());
        let hier = HierarchicalSimulator::new(&protocol, config);

        let mut rng = StdRng::seed_from_u64(0xAB7A + n as u64);
        let a = run_scheme(n, model, trials, &mut rng, |inputs, seed| {
            rewind.simulate(inputs, model, seed).ok().map(|o| {
                (
                    o.transcript().to_vec(),
                    o.stats().channel_rounds,
                    o.stats().rewinds,
                )
            })
        });
        let mut rng = StdRng::seed_from_u64(0xAB7A + n as u64);
        let b = run_scheme(n, model, trials, &mut rng, |inputs, seed| {
            hier.simulate(inputs, model, seed).ok().map(|o| {
                (
                    o.transcript().to_vec(),
                    o.stats().channel_rounds,
                    o.stats().rewinds,
                )
            })
        });

        table.row(&[
            &n,
            &eps,
            &f3(a.overhead),
            &f3(a.repairs),
            &format!("{}/{trials}", a.good),
            &f3(b.overhead),
            &f3(b.repairs),
            &format!("{}/{trials}", b.good),
        ]);
    }
    table.print();
    println!("Both schemes realize Theorem 1.2; the hierarchical one is the paper's");
    println!("literal Appendix D.2 structure, the rewind one the simpler discipline.");
}
