//! **Experiment E10 / Table 5 — scheme ablation.**
//!
//! Two full implementations of Theorem 1.2 live in this repository:
//!
//! * the **rewind** scheme (verify-before-commit, pop one chunk per
//!   failure — the engineering-simplified discipline);
//! * the **hierarchical** scheme (Appendix D.2 verbatim: provisional
//!   commits, binary-counter-scheduled progress checks that binary-search
//!   the longest correct prefix).
//!
//! Both must deliver the same `O(log n)` overhead and near-1 success; the
//! table compares overhead, rewind/truncation counts, and success side by
//! side across `n` and noise rates — the design-choice ablation called
//! out in `DESIGN.md`.
//!
//! Trials run on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`); both schemes see the same inputs and channel seed
//! within a trial (a paired comparison), with all randomness derived
//! from `(base_seed, n, eps, trial)` — thread-count independent.

use beeps_bench::{f3, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{CodeCache, HierarchicalSimulator, RewindSimulator, Simulator, SimulatorConfig};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::InputSet;
use rand::Rng;

struct Cell {
    overhead: f64,
    repairs: f64,
    good: u32,
}

fn aggregate(records: &[Option<(bool, usize, usize)>], protocol_len: usize) -> Cell {
    let mut rounds = 0usize;
    let mut repairs = 0usize;
    let mut good = 0u32;
    let mut done = 0u32;
    for (ok, channel_rounds, rewinds) in records.iter().flatten() {
        done += 1;
        rounds += channel_rounds;
        repairs += rewinds;
        good += u32::from(*ok);
    }
    Cell {
        overhead: rounds as f64 / f64::from(done.max(1)) / protocol_len as f64,
        repairs: repairs as f64 / f64::from(done.max(1)),
        good,
    }
}

pub fn main() {
    let trials = 8usize;
    let base_seed = 0xAB7Au64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("tab5_scheme_ablation", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        "E10: rewind vs hierarchical (Appendix D.2) implementations of Theorem 1.2",
        &[
            "n",
            "eps",
            "rewind oh",
            "rewind repairs",
            "rewind ok",
            "hier oh",
            "hier repairs",
            "hier ok",
        ],
    );
    let mut all_metrics = MetricsRegistry::new();
    // Both schemes at a sweep point share one cached code table across
    // all trials (the paired comparison uses identical parameters).
    let code_cache = std::sync::Arc::new(CodeCache::new());

    for &(n, eps) in &[
        (8usize, 0.05f64),
        (8, 0.15),
        (16, 0.05),
        (16, 0.15),
        (32, 0.1),
    ] {
        let model = NoiseModel::Correlated { epsilon: eps };
        let config = SimulatorConfig::builder(n)
            .model(model)
            .code_cache(std::sync::Arc::clone(&code_cache))
            .build();
        let protocol = InputSet::new(n);
        let rewind = RewindSimulator::new(&protocol, config.clone());
        let hier = HierarchicalSimulator::new(&protocol, config);

        let sweep_key = n as u64 * 1000 + (eps * 100.0).round() as u64;
        let (records, m) = runner.run_with_metrics(
            trial_seed(base_seed, sweep_key),
            trials,
            |trial, metrics| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<usize> = (0..n).map(|_| input_rng.gen_range(0..2 * n)).collect();
                let truth = run_noiseless(&protocol, &inputs);
                let measure = |out: Result<beeps_core::SimOutcome<_>, _>| {
                    out.ok().map(|o| {
                        (
                            o.transcript() == truth.transcript(),
                            o.stats().channel_rounds,
                            o.stats().rewinds,
                        )
                    })
                };
                (
                    measure(rewind.simulate_with_metrics(&inputs, model, trial.seed, metrics)),
                    measure(hier.simulate_with_metrics(&inputs, model, trial.seed, metrics)),
                )
            },
        );
        all_metrics.merge_from(&m);

        let rewind_records: Vec<_> = records.iter().map(|(a, _)| *a).collect();
        let hier_records: Vec<_> = records.iter().map(|(_, b)| *b).collect();
        let a = aggregate(&rewind_records, protocol.length());
        let b = aggregate(&hier_records, protocol.length());

        table.row(&[
            &n,
            &eps,
            &f3(a.overhead),
            &f3(a.repairs),
            &format!("{}/{trials}", a.good),
            &f3(b.overhead),
            &f3(b.repairs),
            &format!("{}/{trials}", b.good),
        ]);
    }
    table.print();
    println!("Both schemes realize Theorem 1.2; the hierarchical one is the paper's");
    println!("literal Appendix D.2 structure, the rewind one the simpler discipline.");

    let mut log = ExperimentLog::new("tab5_scheme_ablation");
    log.field("base_seed", base_seed)
        .field("trials", trials)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
