//! **Experiment E4 / Table 1 — Theorem D.1 (finding owners).**
//!
//! Failure rate of Algorithm 1's owners phase as a function of the
//! codeword length, at several `n`, over the one-sided `ε = 1/3` channel.
//! Theorem D.1 needs the phase to fail with probability at most `n^{-10}`
//! for a suitable constant-rate code; the table shows failures dropping
//! geometrically with codeword length (and the cutoff-rate-sized length
//! marked in the last column).
//!
//! Trials run on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`); each `(n, code_len)` cell gets its own base seed
//! and each trial its own bit-matrix and channel streams, so the counts
//! are thread-count independent.

use beeps_bench::{trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::NoiseModel;
use beeps_core::run_owners_phase;
use beeps_info::tail;
use beeps_metrics::MetricsRegistry;
use rand::Rng;

pub fn main() {
    let eps = 1.0 / 3.0;
    let model = NoiseModel::OneSidedZeroToOne { epsilon: eps };
    let trials = 200usize;
    let base_seed = 0xAB1u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("tab1_owners_phase", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        "E4: owners-phase failures / trials vs codeword length (one-sided eps=1/3)",
        &[
            "n",
            "len=8",
            "len=16",
            "len=32",
            "len=64",
            "sized len (target 1e-4)",
        ],
    );
    let mut all_metrics = MetricsRegistry::new();

    for n in [4usize, 8, 16, 32] {
        let chunk = n; // the paper's chunk length
        let mut cells: Vec<String> = Vec::new();
        for &code_len in &[8usize, 16, 32, 64] {
            let cell_seed = trial_seed(trial_seed(base_seed, n as u64), code_len as u64);
            let (records, m) = runner.run_with_metrics(cell_seed, trials, |trial, metrics| {
                let mut bit_rng = trial.sub_rng(0);
                let bits: Vec<Vec<bool>> = (0..n)
                    .map(|_| (0..chunk).map(|_| bit_rng.gen_bool(0.25)).collect())
                    .collect();
                let out = run_owners_phase(&bits, model, code_len, trial.index as u64, trial.seed);
                let failed = !out.valid_for(&bits);
                let cell = format!("exp.owners.n.{n:03}.len.{code_len:03}");
                metrics.inc(&format!("{cell}.trials"), 1);
                if failed {
                    metrics.inc(&format!("{cell}.failures"), 1);
                }
                failed
            });
            all_metrics.merge_from(&m);
            let failures = records.iter().filter(|&&failed| failed).count();
            cells.push(format!("{failures}/{trials}"));
        }
        let sized = tail::random_code_length(chunk + 1, tail::cutoff_rate_z(eps), 1e-4);
        table.row(&[&n, &cells[0], &cells[1], &cells[2], &cells[3], &sized]);
    }
    table.print();
    println!("paper: Theorem D.1 — with a suitable constant-rate code the phase computes");
    println!("valid, agreed owners except with polynomially small probability; failures");
    println!("above drop geometrically in the codeword length as predicted.");

    let mut log = ExperimentLog::new("tab1_owners_phase");
    log.field("base_seed", base_seed)
        .field("trials", trials)
        .field("epsilon", eps)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
