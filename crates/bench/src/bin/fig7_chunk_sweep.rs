//! **Experiment E14 / Figure 7 — chunk-length ablation.**
//!
//! The paper fixes the chunk length at `n` (Algorithm 1 simulates "chunks
//! of size n"). This sweep shows why that's the right neighborhood:
//!
//! * **short chunks** pay the owners phase's fixed `n·W`-round term too
//!   often (the `(L + n)` iteration count is dominated by `n`);
//! * **long chunks** amortize the owners phase but lose more work per
//!   rewind and raise the per-chunk failure probability.
//!
//! The sweep holds everything else fixed and varies `L/n`. Trials run on
//! the shared [`TrialRunner`] (`--threads N` / `BEEPS_THREADS`) with
//! per-trial `(base_seed, factor, trial)` seed streams, so the sweep is
//! thread-count independent.

use beeps_bench::{f3, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{run_noiseless, NoiseModel};
use beeps_core::{CodeCache, RewindSimulator, Simulator, SimulatorConfig};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::MultiOr;
use rand::Rng;

pub fn main() {
    let n = 8;
    let t_len = 128; // long protocol so several chunks fit at every L
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let trials = 8usize;
    let base_seed = 0xE14u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("fig7_chunk_sweep", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        &format!("E14: chunk-length sweep, MultiOr n={n} T={t_len}, eps=0.1"),
        &["L/n", "L", "overhead", "rewinds/run", "success"],
    );
    let mut all_metrics = MetricsRegistry::new();
    // Each factor changes chunk_len (a distinct code table), but within
    // a factor all trials share one cached build.
    let code_cache = std::sync::Arc::new(CodeCache::new());

    for factor in [1usize, 2, 4, 8, 16] {
        let p = MultiOr::new(n, t_len);
        let mut config = SimulatorConfig::builder(n)
            .model(model)
            .code_cache(std::sync::Arc::clone(&code_cache))
            .build();
        config.chunk_len = (n * factor) / 2; // L = n/2, n, 2n, 4n, 8n
        config.budget_factor = 16.0;
        let sim = RewindSimulator::new(&p, config);

        let (records, m) = runner.run_with_metrics(
            trial_seed(base_seed, factor as u64),
            trials,
            |trial, metrics| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<Vec<bool>> = (0..n)
                    .map(|_| (0..t_len).map(|_| input_rng.gen_bool(0.2)).collect())
                    .collect();
                let truth = run_noiseless(&p, &inputs);
                sim.simulate_with_metrics(&inputs, model, trial.seed, metrics)
                    .ok()
                    .map(|out| {
                        (
                            out.stats().channel_rounds,
                            out.stats().rewinds,
                            out.transcript() == truth.transcript(),
                        )
                    })
            },
        );
        all_metrics.merge_from(&m);

        let mut rounds = 0usize;
        let mut rewinds = 0usize;
        let mut good = 0u32;
        let mut done = 0u32;
        for (r, w, ok) in records.into_iter().flatten() {
            done += 1;
            rounds += r;
            rewinds += w;
            good += u32::from(ok);
        }
        let overhead = rounds as f64 / f64::from(done.max(1)) / t_len as f64;
        table.row(&[
            &format!("{:.1}", factor as f64 / 2.0),
            &((n * factor) / 2),
            &f3(overhead),
            &f3(rewinds as f64 / f64::from(done.max(1))),
            &format!("{good}/{trials}"),
        ]);
    }
    table.print();
    println!("Short chunks repay the owners phase's fixed n-term too often; past");
    println!("L = Theta(n) the curve flattens while long chunks lose more simulated");
    println!("work per rewind, so the paper's choice is the right neighborhood.");

    let mut log = ExperimentLog::new("fig7_chunk_sweep");
    log.field("base_seed", base_seed)
        .field("n", n)
        .field("protocol_length", t_len)
        .field("trials", trials)
        .field("epsilon", 0.1)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
