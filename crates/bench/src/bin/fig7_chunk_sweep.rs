//! **Experiment E14 / Figure 7 — chunk-length ablation.**
//!
//! The paper fixes the chunk length at `n` (Algorithm 1 simulates "chunks
//! of size n"). This sweep shows why that's the right neighborhood:
//!
//! * **short chunks** pay the owners phase's fixed `n·W`-round term too
//!   often (the `(L + n)` iteration count is dominated by `n`);
//! * **long chunks** amortize the owners phase but lose more work per
//!   rewind and raise the per-chunk failure probability.
//!
//! The sweep holds everything else fixed and varies `L/n`.

use beeps_bench::{f3, Table};
use beeps_channel::{run_noiseless, NoiseModel};
use beeps_core::{RewindSimulator, SimulatorConfig};
use beeps_protocols::MultiOr;
use rand::{rngs::StdRng, Rng, SeedableRng};

pub fn main() {
    let n = 8;
    let t_len = 128; // long protocol so several chunks fit at every L
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let trials = 8u64;
    let mut table = Table::new(
        &format!("E14: chunk-length sweep, MultiOr n={n} T={t_len}, eps=0.1"),
        &["L/n", "L", "overhead", "rewinds/run", "success"],
    );
    let mut rng = StdRng::seed_from_u64(0xE14);

    for factor in [1usize, 2, 4, 8, 16] {
        let p = MultiOr::new(n, t_len);
        let mut config = SimulatorConfig::for_channel(n, model);
        config.chunk_len = (n * factor) / 2; // L = n/2, n, 2n, 4n, 8n
        config.budget_factor = 16.0;
        let sim = RewindSimulator::new(&p, config);
        let mut rounds = 0usize;
        let mut rewinds = 0usize;
        let mut good = 0u32;
        let mut done = 0u32;
        for seed in 0..trials {
            let inputs: Vec<Vec<bool>> = (0..n)
                .map(|_| (0..t_len).map(|_| rng.gen_bool(0.2)).collect())
                .collect();
            let truth = run_noiseless(&p, &inputs);
            if let Ok(out) = sim.simulate(&inputs, model, seed) {
                done += 1;
                rounds += out.stats().channel_rounds;
                rewinds += out.stats().rewinds;
                if out.transcript() == truth.transcript() {
                    good += 1;
                }
            }
        }
        let overhead = rounds as f64 / done.max(1) as f64 / t_len as f64;
        table.row(&[
            &format!("{:.1}", factor as f64 / 2.0),
            &((n * factor) / 2),
            &f3(overhead),
            &f3(rewinds as f64 / f64::from(done.max(1))),
            &format!("{good}/{trials}"),
        ]);
    }
    table.print();
    println!("The paper's choice L = Theta(n) sits at the sweep's sweet spot: short");
    println!("chunks repay the owners phase's fixed n-term too often, long chunks");
    println!("rewind more work per failure.");
}
