//! **Experiment E1 / Figure 1 — Theorem 1.2 (upper bound).**
//!
//! Measures the round overhead of the rewind simulation scheme on
//! `InputSet_n` as `n` grows, at a fixed noise rate. The paper proves the
//! overhead can be made `O(log n)`; the printed series should be fit well
//! by `a·log₂ n + b` (reported at the end), with success probability near
//! 1 throughout.
//!
//! Trials run on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`); each trial's inputs and channel noise derive from
//! its own `(base_seed, n, trial)` stream, so results are identical for
//! any thread count.

use beeps_bench::{f3, linear_fit, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{CodeCache, RewindSimulator, Simulator, SimulatorConfig};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::InputSet;
use rand::Rng;

pub fn main() {
    let eps = 0.1;
    let model = NoiseModel::Correlated { epsilon: eps };
    let trials = 32usize;
    let base_seed = 0xF161u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("fig1_upper_bound_overhead", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        &format!("E1: rewind-scheme overhead on InputSet_n, correlated eps={eps}"),
        &[
            "n",
            "T",
            "avg rounds",
            "overhead",
            "overhead/log2(n)",
            "success",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut all_metrics = MetricsRegistry::new();
    // One owners-code table per sweep point, built once and shared by
    // every trial (instead of once per simulate call).
    let code_cache = std::sync::Arc::new(CodeCache::new());

    for n in [4usize, 8, 16, 32, 64, 128] {
        let protocol = InputSet::new(n);
        let config = SimulatorConfig::builder(n)
            .model(model)
            .code_cache(std::sync::Arc::clone(&code_cache))
            .build();
        let sim = RewindSimulator::new(&protocol, config);
        // Independent seed stream per sweep point; inputs are drawn
        // from the trial's own sub-stream (not one sequential RNG), so
        // trial t is the same regardless of sweep order or threads.
        let (records, m) =
            runner.run_with_metrics(trial_seed(base_seed, n as u64), trials, |trial, metrics| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<usize> = (0..n).map(|_| input_rng.gen_range(0..2 * n)).collect();
                let truth = run_noiseless(&protocol, &inputs);
                match sim.simulate_with_metrics(&inputs, model, trial.seed, metrics) {
                    Ok(out) => (
                        out.stats().channel_rounds,
                        out.transcript() == truth.transcript(),
                    ),
                    Err(_) => (0, false),
                }
            });
        all_metrics.merge_from(&m);
        let rounds: usize = records.iter().map(|(r, _)| r).sum();
        let good = records.iter().filter(|(_, ok)| *ok).count();
        let avg = rounds as f64 / trials as f64;
        let overhead = avg / protocol.length() as f64;
        let log_n = (n as f64).log2();
        table.row(&[
            &n,
            &protocol.length(),
            &f3(avg),
            &f3(overhead),
            &f3(overhead / log_n),
            &format!("{good}/{trials}"),
        ]);
        xs.push(log_n);
        ys.push(overhead);
    }
    table.print();
    let (a, b, r2) = linear_fit(&xs, &ys);
    println!("fit: overhead ~= {a:.2} * log2(n) + {b:.2}   (r^2 = {r2:.3})");
    println!("paper: Theorem 1.2 — O(log n) overhead suffices for every protocol.");

    let mut log = ExperimentLog::new("fig1_upper_bound_overhead");
    log.field("base_seed", base_seed)
        .field("trials", trials)
        .field("epsilon", eps)
        .field("fit_slope", a)
        .field("fit_intercept", b)
        .field("fit_r2", r2)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
