//! **Experiment E1 / Figure 1 — Theorem 1.2 (upper bound).**
//!
//! Measures the round overhead of the rewind simulation scheme on
//! `InputSet_n` as `n` grows, at a fixed noise rate. The paper proves the
//! overhead can be made `O(log n)`; the printed series should be fit well
//! by `a·log₂ n + b` (reported at the end), with success probability near
//! 1 throughout.

use beeps_bench::{f3, linear_fit, Table};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{RewindSimulator, SimulatorConfig};
use beeps_protocols::InputSet;
use rand::{rngs::StdRng, Rng, SeedableRng};

pub fn main() {
    let eps = 0.1;
    let model = NoiseModel::Correlated { epsilon: eps };
    let trials = 10u64;
    let mut table = Table::new(
        &format!("E1: rewind-scheme overhead on InputSet_n, correlated eps={eps}"),
        &[
            "n",
            "T",
            "avg rounds",
            "overhead",
            "overhead/log2(n)",
            "success",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut rng = StdRng::seed_from_u64(0xF161);

    for n in [4usize, 8, 16, 32, 64, 128] {
        let protocol = InputSet::new(n);
        let config = SimulatorConfig::for_channel(n, model);
        let sim = RewindSimulator::new(&protocol, config);
        let mut rounds = 0usize;
        let mut good = 0u32;
        for seed in 0..trials {
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            let truth = run_noiseless(&protocol, &inputs);
            if let Ok(out) = sim.simulate(&inputs, model, seed) {
                rounds += out.stats().channel_rounds;
                if out.transcript() == truth.transcript() {
                    good += 1;
                }
            }
        }
        let avg = rounds as f64 / trials as f64;
        let overhead = avg / protocol.length() as f64;
        let log_n = (n as f64).log2();
        table.row(&[
            &n,
            &protocol.length(),
            &f3(avg),
            &f3(overhead),
            &f3(overhead / log_n),
            &format!("{good}/{trials}"),
        ]);
        xs.push(log_n);
        ys.push(overhead);
    }
    table.print();
    let (a, b, r2) = linear_fit(&xs, &ys);
    println!("fit: overhead ~= {a:.2} * log2(n) + {b:.2}   (r^2 = {r2:.3})");
    println!("paper: Theorem 1.2 — O(log n) overhead suffices for every protocol.");
}
