//! **Hot-path benchmark suite** — pins the wall-clock performance of the
//! executor/channel/metrics stack so perf regressions are visible in a
//! diff, not just in vibes.
//!
//! Measures three layers of the stack:
//!
//! * raw [`StochasticChannel::transmit`] throughput per noise model
//!   (the per-round sampling cost each Monte Carlo sweep pays);
//! * [`Executor::run`] / [`Executor::run_with_metrics`] round throughput
//!   under `Independent` and `Correlated` noise (the inner loop of every
//!   experiment binary);
//! * the bit-sliced lane engine (`executor.lanes.*`): the same striding
//!   workload through [`LaneExecutor`], 64 trial-lanes per word — under
//!   shared noise and, via [`IndependentLaneChannel`], under
//!   independent noise (`executor.lanes.independent`) — with ops
//!   counted per *trial-round* so the numbers are directly comparable
//!   to the scalar `executor.run.*` rows;
//! * one full scheme per family end to end, plus the batch path of
//!   every lane-sliced scheme (`scheme.repetition.n64.batch`,
//!   `scheme.rewind.batch`, `scheme.hierarchical.batch`,
//!   `scheme.one_to_zero.batch`) driving `simulate_batch` over one full
//!   64-seed lane group against scalar per-party twins on the same
//!   workload, and the collapsed repetition engine
//!   (`scheme.repetition.soa`) against the same twin;
//! * the cross-trial layer: skewed Monte Carlo fan-out through the
//!   [`TrialRunner`] scratch arenas (`runner.skewed`), the shared
//!   owners-code table cache (`code_cache`), and the packed
//!   encode/decode symbol roundtrip (`decode_packed`).
//!
//! Results are written as JSON (default `BENCH_hotpaths.json` in the
//! current directory). Pass `--baseline <file>` — a JSON previously
//! produced by this harness — to embed the old numbers and per-benchmark
//! speedups in the output; `--smoke` runs one tiny iteration of
//! everything so CI can keep the harness compiling and running without
//! paying measurement-grade iteration counts.
//!
//! Independently of `--baseline`, the output always carries a flat
//! `"lanes"` object pairing each lane-sliced benchmark with its scalar
//! twin *from the same run* — `{scalar name: scalar ns ÷ lane ns}` —
//! which `scripts/bench_compare.sh` gates at ≥ 4× in full mode, and a
//! flat `"soa"` object doing the same for the scaling pairs
//! (`party.soa.*` collapsed-vs-scalar, `channel.sparse.*`
//! sparse-vs-dense), gated at ≥ 3×. The `scheme.rewind.n1e5` row pins
//! the collapsed engine's wall-clock at fig_scale's scale regime. The
//! `config` block records the host's core count and `BEEPS_THREADS` so
//! the comparison script can flag cross-hardware baselines.
//!
//! Timing uses the sanctioned [`Stopwatch`] wrapper; everything else in
//! the harness is seed-deterministic, so two runs measure the same work.

use std::path::PathBuf;

use beeps_bench::{Json, Observation, TrialRunner};
use beeps_channel::{
    Channel, Executor, IndependentLaneChannel, LaneChannel, LaneExecutor, LaneParty, NoiseModel,
    Party, StochasticChannel, LANES,
};
use beeps_core::{
    CodeCache, HierarchicalSimulator, OneToZeroSimulator, RepetitionSimulator, RewindSimulator,
    SimulatorConfig, SoaScratch,
};
use beeps_ecc::{BitMetric, RandomCode, SymbolCode};
use beeps_metrics::{MetricsRegistry, Stopwatch};
use beeps_protocols::{Broadcast, InputSet, RollCall};

/// Parties attached to the executor/channel benchmarks.
const PARTIES: usize = 64;
/// Noise rate used by the channel/executor benchmarks.
const EPS: f64 = 0.05;
/// Noise rate for the *independent-noise executor* rows: the sparse
/// regime the per-party flip calendar targets (fig_scale sweeps ε down
/// to 10^-5). Under independent noise each trial's flip sampling is
/// irreducible — bitwise fidelity pins one RNG stream per trial — so at
/// dense ε sampling dominates both sides and word-slicing cannot pay;
/// the pinned pair measures the regime the engine exists for. Dense
/// independent *sampling* throughput stays pinned by
/// `noise.independent` (at [`EPS`]).
const INDEP_EPS: f64 = 1e-3;

struct Args {
    iters: usize,
    rounds: usize,
    scheme_trials: usize,
    smoke: bool,
    out: PathBuf,
    baseline: Option<PathBuf>,
    progress: bool,
    profile: Option<PathBuf>,
}

impl Args {
    fn parse() -> Self {
        let mut args = Args {
            iters: 5,
            rounds: 200_000,
            scheme_trials: 8,
            smoke: false,
            out: PathBuf::from("BENCH_hotpaths.json"),
            baseline: None,
            progress: false,
            profile: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--smoke" => {
                    args.smoke = true;
                    args.iters = 1;
                    args.rounds = 2_000;
                    args.scheme_trials = 1;
                }
                "--iters" => args.iters = parse_num(it.next(), "--iters"),
                "--rounds" => args.rounds = parse_num(it.next(), "--rounds"),
                "--out" => args.out = PathBuf::from(it.next().expect("--out needs a path")),
                "--baseline" => {
                    args.baseline =
                        Some(PathBuf::from(it.next().expect("--baseline needs a path")));
                }
                "--progress" => args.progress = true,
                "--profile" => {
                    args.profile = Some(PathBuf::from(it.next().expect("--profile needs a path")));
                }
                other => {
                    eprintln!("unknown argument {other}");
                    eprintln!(
                        "usage: bench_hotpaths [--smoke] [--iters N] [--rounds N] \
                         [--out FILE] [--baseline FILE] [--progress] [--profile FILE]"
                    );
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

fn parse_num(v: Option<String>, flag: &str) -> usize {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a positive integer"))
}

/// A deliberately cheap party so the benchmarks measure the harness, not
/// the protocol: beeps on multiples of its stride, remembers one bit.
struct Strider {
    stride: usize,
    round: usize,
    last: bool,
}

impl Party for Strider {
    fn beep(&mut self) -> bool {
        self.round.is_multiple_of(self.stride)
    }

    fn hear(&mut self, heard: bool) {
        self.round += 1;
        self.last = heard;
    }
}

fn striders(n: usize) -> Vec<Strider> {
    (0..n)
        .map(|i| Strider {
            stride: 2 + (i % 7),
            round: 0,
            last: false,
        })
        .collect()
}

/// Lane-sliced benchmarks paired with their scalar twins: the `"lanes"`
/// section of the output reports `scalar ns_per_op ÷ lane ns_per_op`
/// under each scalar name. Both sides count ops per trial-round
/// (executor rows) or per trial (scheme rows), so the ratio is the
/// honest per-trial speedup of the bit-sliced path.
const LANE_PAIRS: [(&str, &str); 6] = [
    ("executor.run.correlated", "executor.lanes.correlated"),
    ("executor.run.independent", "executor.lanes.independent"),
    ("scheme.repetition.n64", "scheme.repetition.n64.batch"),
    ("scheme.rewind", "scheme.rewind.batch"),
    ("scheme.hierarchical", "scheme.hierarchical.batch"),
    ("scheme.one_to_zero", "scheme.one_to_zero.batch"),
];

/// Scaling benchmarks paired with their pre-scaling twins: the `"soa"`
/// section reports `slow ns_per_op ÷ fast ns_per_op` under the slow
/// (baseline) name, and `scripts/bench_compare.sh` gates each ratio at
/// ≥ 3× in full mode. Per-party round ops on the soa pair and transmit
/// ops on the channel pair keep both ratios honest per-unit-of-work.
const SOA_PAIRS: [(&str, &str); 3] = [
    ("party.soa.scalar.n1e4", "party.soa.collapsed.n1e4"),
    (
        "channel.dense.transmit.n1e4",
        "channel.sparse.transmit.n1e4",
    ),
    ("scheme.repetition.n64", "scheme.repetition.soa"),
];

/// The word-level [`Strider`]: same stride schedule, but beeping on all
/// 64 trial-lanes of the word at once.
struct WordStrider {
    stride: usize,
    round: usize,
    last: u64,
}

impl LaneParty for WordStrider {
    fn beep_word(&mut self) -> u64 {
        if self.round.is_multiple_of(self.stride) {
            u64::MAX
        } else {
            0
        }
    }

    fn hear_word(&mut self, heard: u64) {
        self.round += 1;
        self.last = heard;
    }
}

fn word_striders(n: usize) -> Vec<WordStrider> {
    (0..n)
        .map(|i| WordStrider {
            stride: 2 + (i % 7),
            round: 0,
            last: 0,
        })
        .collect()
}

/// One measurement: runs `work` (which reports how many operations it
/// performed) `iters` times and keeps the fastest iteration.
fn measure(iters: usize, mut work: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut ops = 0;
    for _ in 0..iters.max(1) {
        let sw = Stopwatch::start();
        ops = work();
        let ns = sw.elapsed().as_nanos() as f64;
        let per_op = if ops == 0 { ns } else { ns / ops as f64 };
        if per_op < best {
            best = per_op;
        }
    }
    (best, ops)
}

struct Suite {
    args: Args,
    results: Vec<(String, f64, usize)>,
    observer: Option<std::sync::Arc<dyn beeps_observe::Observer>>,
}

impl Suite {
    /// A `threads`-wide runner carrying the suite's observer stack (if
    /// `--progress` / `--profile` asked for one).
    fn runner(&self, threads: usize) -> TrialRunner {
        match &self.observer {
            Some(obs) => TrialRunner::new(threads).with_observer(std::sync::Arc::clone(obs)),
            None => TrialRunner::new(threads),
        }
    }

    fn bench(&mut self, name: &str, work: impl FnMut() -> usize) {
        self.bench_with_iters(name, self.args.iters, work);
    }

    /// [`Suite::bench`] with an explicit iteration count — for the few
    /// deliberately slow baselines (the scalar twin of the collapsed
    /// engine) where the default count would dominate the whole suite.
    fn bench_with_iters(&mut self, name: &str, iters: usize, work: impl FnMut() -> usize) {
        let (ns_per_op, ops) = measure(iters, work);
        println!("{name:<40} {ns_per_op:>12.1} ns/op  ({ops} ops/iter)");
        // Plausibility floor: nothing in this stack really completes an
        // operation in under a hundredth of a nanosecond, so a number
        // below it means the row's op count includes work the measured
        // engine never performs (or the work got optimized away).
        if ns_per_op < 0.01 {
            eprintln!(
                "bench_hotpaths: WARNING: {name} at {ns_per_op} ns/op is implausible; \
                 check the row's ops accounting (and its black_box sinks)"
            );
        }
        self.results.push((name.to_owned(), ns_per_op, ops));
    }
}

fn channel_benches(suite: &mut Suite) {
    let rounds = suite.args.rounds;
    let models: [(&str, NoiseModel); 5] = [
        ("noise.noiseless", NoiseModel::Noiseless),
        ("noise.correlated", NoiseModel::Correlated { epsilon: EPS }),
        (
            "noise.one_sided_0to1",
            NoiseModel::OneSidedZeroToOne { epsilon: EPS },
        ),
        (
            "noise.one_sided_1to0",
            NoiseModel::OneSidedOneToZero { epsilon: EPS },
        ),
        (
            "noise.independent",
            NoiseModel::Independent { epsilon: EPS },
        ),
    ];
    for (name, model) in models {
        suite.bench(name, || {
            let mut ch = StochasticChannel::new(PARTIES, model, 0xC0FFEE);
            let mut sink = 0usize;
            for r in 0..rounds {
                // Mostly-silent rounds with periodic beeps, as in real
                // sparse protocols; exercises both one-sided regimes.
                let or = r % 8 == 0;
                sink += usize::from(ch.transmit(or).heard_by(r % PARTIES));
            }
            std::hint::black_box(sink);
            rounds
        });
    }
}

fn executor_benches(suite: &mut Suite) {
    let rounds = suite.args.rounds;
    let independent = NoiseModel::Independent { epsilon: INDEP_EPS };
    let correlated = NoiseModel::Correlated { epsilon: EPS };

    suite.bench("executor.run.independent", || {
        let mut parties = striders(PARTIES);
        let mut ch = StochasticChannel::new(PARTIES, independent, 7);
        let stats = Executor::run(&mut parties, &mut ch, rounds);
        std::hint::black_box(stats.energy);
        rounds
    });
    suite.bench("executor.run.correlated", || {
        let mut parties = striders(PARTIES);
        let mut ch = StochasticChannel::new(PARTIES, correlated, 7);
        let stats = Executor::run(&mut parties, &mut ch, rounds);
        std::hint::black_box(stats.energy);
        rounds
    });
    suite.bench("executor.run_with_metrics.independent", || {
        let mut parties = striders(PARTIES);
        let mut ch = StochasticChannel::new(PARTIES, independent, 7);
        let mut metrics = MetricsRegistry::new();
        let stats = Executor::run_with_metrics(&mut parties, &mut ch, rounds, &mut metrics);
        std::hint::black_box(stats.energy + metrics.counter("channel.energy") as usize);
        rounds
    });
    suite.bench("executor.run_with_metrics.correlated", || {
        let mut parties = striders(PARTIES);
        let mut ch = StochasticChannel::new(PARTIES, correlated, 7);
        let mut metrics = MetricsRegistry::new();
        let stats = Executor::run_with_metrics(&mut parties, &mut ch, rounds, &mut metrics);
        std::hint::black_box(stats.energy + metrics.counter("channel.energy") as usize);
        rounds
    });
}

fn lane_benches(suite: &mut Suite) {
    // The word-level twin of executor.run.*: the same PARTIES striders,
    // but every word round advances 64 trials at once. Ops count
    // trial-rounds (rounds × LANES), so ns/op here and ns/op on the
    // scalar rows measure the same unit of work.
    let rounds = suite.args.rounds;
    let seeds: Vec<u64> = (0..LANES as u64).map(|l| 7 + l).collect();
    let models: [(&str, NoiseModel); 2] = [
        ("executor.lanes.noiseless", NoiseModel::Noiseless),
        (
            "executor.lanes.correlated",
            NoiseModel::Correlated { epsilon: EPS },
        ),
    ];
    for (name, model) in models {
        suite.bench(name, || {
            let mut parties = word_striders(PARTIES);
            let mut ch = LaneChannel::shared(model, &seeds).expect("shared model");
            let stats = LaneExecutor::run(&mut parties, &mut ch, rounds);
            std::hint::black_box(stats.energy);
            rounds * LANES
        });
    }

    // The independent-noise twin of executor.run.independent: the same
    // striders, but 64 trials per word over the per-party×per-lane flip
    // calendar. Ops again count trial-rounds, so the lane gate compares
    // like with like.
    suite.bench("executor.lanes.independent", || {
        let mut parties = word_striders(PARTIES);
        let model = NoiseModel::Independent { epsilon: INDEP_EPS };
        let mut ch =
            IndependentLaneChannel::new(PARTIES, model, &seeds).expect("independent model");
        let stats = LaneExecutor::run_independent(&mut parties, &mut ch, rounds);
        std::hint::black_box(stats.energy);
        rounds * LANES
    });
}

fn scheme_benches(suite: &mut Suite) {
    let n = 8usize;
    let trials = suite.args.scheme_trials;
    let protocol = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (5 * i + 3) % (2 * n)).collect();
    let two = NoiseModel::Correlated { epsilon: 0.1 };
    let down = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
    let config = SimulatorConfig::builder(n).model(two).build();

    // The batch benches push one full lane group (64 seeds) through
    // simulate_batch; per-trial ops keep them comparable to the scalar
    // per-seed loops above. --smoke shrinks the group, which is fine:
    // smoke numbers are plumbing checks, not measurements.
    let batch_seeds: Vec<u64> = (0..if suite.args.smoke { 8 } else { LANES } as u64).collect();

    let rep = RepetitionSimulator::new(&protocol, config.clone());
    suite.bench("scheme.repetition", || {
        for seed in 0..trials as u64 {
            let out = rep.simulate(&inputs, two, seed).expect("fixed length");
            std::hint::black_box(out.stats().energy);
        }
        trials
    });

    // The repetition lane pair runs RollCall at n = 64 — cheap beeps
    // and allocation-free outputs, so the pair measures the simulation
    // harness rather than per-trial protocol-output construction, and
    // the n-scaling regime where the lane engine's payoff lives. The
    // scalar twin drives an explicit channel through `simulate_over`
    // (the per-party engine): the `simulate` front door now routes
    // shared noise through the collapsed engine, and both gates on this
    // row — lanes (batch) and soa (collapsed) — measure their speedup
    // over the per-party path they replace.
    let wide = 64usize;
    let wide_protocol = RollCall::new(wide);
    let wide_inputs: Vec<bool> = (0..wide).map(|i| i % 3 != 0).collect();
    let wide_config = SimulatorConfig::builder(wide).model(two).build();
    let wide_rep = RepetitionSimulator::new(&wide_protocol, wide_config);
    suite.bench("scheme.repetition.n64", || {
        for seed in 0..trials as u64 {
            let mut ch = StochasticChannel::new(wide, two, seed);
            let out = wide_rep
                .simulate_over(&wide_inputs, two, &mut ch)
                .expect("fixed length");
            std::hint::black_box(out.stats().energy);
        }
        trials
    });
    let mut rep_scratch = SoaScratch::default();
    suite.bench("scheme.repetition.soa", || {
        for seed in 0..trials as u64 {
            let out = wide_rep
                .simulate_with_scratch(&wide_inputs, two, seed, &mut rep_scratch)
                .expect("fixed length");
            std::hint::black_box(out.stats().energy);
        }
        trials
    });
    suite.bench("scheme.repetition.n64.batch", || {
        let outs = wide_rep.simulate_batch(&wide_inputs, two, &batch_seeds);
        for out in outs {
            std::hint::black_box(out.expect("fixed length").stats().energy);
        }
        batch_seeds.len()
    });
    // The rewind scalar twin drives an explicit channel through
    // `simulate_over`, which is pinned to the per-party engine: the
    // `simulate` front door now routes shared-noise models through the
    // collapsed engine, and the lane gate's job is to keep the
    // bit-sliced batch path ≥ 4× the *per-party* path it slices.
    // The collapsed front door is pinned separately (`party.soa.*`).
    let rew = RewindSimulator::new(&protocol, config.clone());
    suite.bench("scheme.rewind", || {
        for seed in 0..trials as u64 {
            let mut ch = StochasticChannel::new(n, two, seed);
            let out = rew.simulate_over(&inputs, two, &mut ch);
            std::hint::black_box(out.ok().map_or(0, |o| o.stats().energy));
        }
        trials
    });
    suite.bench("scheme.rewind.batch", || {
        let outs = rew.simulate_batch(&inputs, two, &batch_seeds);
        for out in outs {
            std::hint::black_box(out.ok().map_or(0, |o| o.stats().energy));
        }
        batch_seeds.len()
    });
    // Hierarchical and one-to-zero follow the rewind pattern: scalar
    // twin through the per-party `simulate_over`, batch through the
    // lane-sliced `simulate_batch` over the same seeds.
    let hier = HierarchicalSimulator::new(&protocol, config);
    suite.bench("scheme.hierarchical", || {
        for seed in 0..trials as u64 {
            let mut ch = StochasticChannel::new(n, two, seed);
            let out = hier.simulate_over(&inputs, two, &mut ch);
            std::hint::black_box(out.ok().map_or(0, |o| o.stats().energy));
        }
        trials
    });
    suite.bench("scheme.hierarchical.batch", || {
        let outs = hier.simulate_batch(&inputs, two, &batch_seeds);
        for out in outs {
            std::hint::black_box(out.ok().map_or(0, |o| o.stats().energy));
        }
        batch_seeds.len()
    });
    // The one-to-zero pair runs at n = 16: under its dense ε = 1/3
    // erasure noise the span sampler advances only ~3 rounds per flip,
    // so the lane engine's edge is the per-party work it removes — n
    // must be wide enough that the twin's cost is party-dominated.
    let z_n = 16usize;
    let z_protocol = InputSet::new(z_n);
    let z_inputs: Vec<usize> = (0..z_n).map(|i| (5 * i + 3) % (2 * z_n)).collect();
    let z = OneToZeroSimulator::new(&z_protocol, 2, 32.0);
    suite.bench("scheme.one_to_zero", || {
        for seed in 0..trials as u64 {
            let mut ch = StochasticChannel::new(z_n, down, seed);
            let out = z.simulate_over(&z_inputs, down, &mut ch);
            std::hint::black_box(out.ok().map_or(0, |o| o.stats().energy));
        }
        trials
    });
    suite.bench("scheme.one_to_zero.batch", || {
        let outs = z.simulate_batch(&z_inputs, down, &batch_seeds);
        for out in outs {
            std::hint::black_box(out.ok().map_or(0, |o| o.stats().energy));
        }
        batch_seeds.len()
    });
}

fn soa_benches(suite: &mut Suite) {
    // --- party.soa.*: the collapsed struct-of-arrays rewind engine
    // against the per-party scalar path on the same workload — a short
    // fixed-length broadcast at n = 10^4 (256 in smoke), where the
    // owners phase is the cost: the scalar path steps all n party
    // structs every channel round (n^2·W work per chunk) while the
    // collapsed engine keeps one shared decode state (n·W). Ops count
    // shared channel rounds on both sides — the unit both engines
    // actually execute, so both ns/op numbers are plausible wall-clock
    // figures — and since the denominators match, the "soa" ratio is
    // still the honest per-round (equivalently per-party-round) cost
    // improvement: the scalar side pays O(n) per channel round, which
    // is exactly the gap the ratio reports.
    // A full run's owners phase is (2+n)·W ≈ 4·10^5 channel rounds —
    // minutes through the scalar path at n = 10^4 — so the pair runs
    // budget-truncated: both engines execute the identical round
    // prefix (budget errors are part of the bitwise-equivalence pin)
    // and report the same rounds_used, keeping the ratio honest while
    // the bench stays seconds.
    let n = if suite.args.smoke { 256 } else { 10_000 };
    let width = 2usize;
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let protocol = Broadcast::new(n, 0, width);
    let config = SimulatorConfig::builder(n)
        .model(model)
        .chunk_len(width)
        .budget_factor(0.01)
        .build();
    let sim = RewindSimulator::new(&protocol, config);
    let mut inputs = vec![0usize; n];
    inputs[0] = 0b10;
    let chan_rounds = |res: Result<beeps_core::SimOutcome<usize>, beeps_core::SimError>| match res {
        Ok(out) => {
            std::hint::black_box(out.stats().energy);
            out.stats().channel_rounds
        }
        Err(beeps_core::SimError::BudgetExhausted { rounds_used, .. }) => rounds_used,
        Err(e) => panic!("unexpected simulation error: {e}"),
    };
    let scalar_iters = suite.args.iters.min(2);
    suite.bench_with_iters("party.soa.scalar.n1e4", scalar_iters, || {
        let mut ch = StochasticChannel::new(n, model, 0x50A);
        chan_rounds(sim.simulate_over(&inputs, model, &mut ch))
    });
    let mut scratch = SoaScratch::default();
    suite.bench("party.soa.collapsed.n1e4", || {
        chan_rounds(sim.simulate_with_scratch(&inputs, model, 0x50A, &mut scratch))
    });

    // --- channel.sparse.*: independent-noise transmit at n = 10^4,
    // consumed the way the schemes consume it — uniform() fast path,
    // per-party reads only on corrupted rounds. At eps = 10^-5 almost
    // every round is clean: the sparse path hands out the (empty)
    // skip-sampled flip bucket and classifies it O(1), while the dense
    // twin (set_dense_deliveries) materializes and then scans an
    // n/64-word row per round. The flip *sampling* cost is identical
    // on both sides, so the ratio isolates the representation.
    let rounds = suite.args.rounds;
    let light = NoiseModel::Independent { epsilon: 1e-5 };
    let consume = |ch: &mut StochasticChannel, rounds: usize| {
        let mut sink = 0usize;
        for r in 0..rounds {
            let d = ch.transmit(r % 8 == 0);
            sink += match d.uniform() {
                Some(bit) => usize::from(bit),
                None => usize::from(d.heard_by(r % n)),
            };
        }
        std::hint::black_box(sink);
        rounds
    };
    suite.bench("channel.sparse.transmit.n1e4", || {
        let mut ch = StochasticChannel::new(n, light, 0x5BA);
        consume(&mut ch, rounds)
    });
    suite.bench("channel.dense.transmit.n1e4", || {
        let mut ch = StochasticChannel::new(n, light, 0x5BA);
        ch.set_dense_deliveries(true);
        consume(&mut ch, rounds)
    });

    // --- channel.lanes.sparse.n1e4: the same light independent noise
    // at n = 10^4 through the lane channel's span sampler, consumed the
    // way the independent-noise repetition engine consumes it: spans of
    // 8 rounds per lane, reading back only the flipped parties. Ops
    // count trial-rounds (rounds × LANES) so the row is comparable to
    // the per-round scalar rows above. The channel is built once —
    // seeding 64 flip calendars over 10^4 parties costs ~100 ms, which
    // would otherwise swamp the sampling cost this row pins. Pinned by
    // the regression tolerance but deliberately not ratio-gated: span
    // sampling's steady state is at parity with the scalar sparse path
    // (both are O(flips) off the same calendar); the lane wins live in
    // the scheme rows, where spans replace per-party work.
    let lane_seeds: Vec<u64> = (0..LANES as u64).map(|l| 0x5BA + l).collect();
    let span = 8usize;
    let spans = rounds / span;
    let mut lane_ch =
        IndependentLaneChannel::new(n, light, &lane_seeds).expect("independent model");
    suite.bench("channel.lanes.sparse.n1e4", || {
        let mut sink = 0usize;
        for _ in 0..spans {
            for lane in 0..LANES {
                for &(party, flips) in lane_ch.span_flips(lane, span as u64) {
                    sink += party as usize + flips as usize;
                }
            }
        }
        std::hint::black_box(sink);
        spans * span * LANES
    });

    // --- scheme.rewind.n1e5: the collapsed engine end to end at
    // n = 10^5 (10^3 in smoke) — the scale regime fig_scale sweeps,
    // pinned here so a wall-clock regression at large n shows up in
    // the diff. No scalar twin: the per-party path at this n is
    // minutes, which is the point of the collapsed engine. Ops count
    // the channel rounds the engine actually executes (not ×n, which
    // would yield sub-picosecond vanity numbers).
    let big_n = if suite.args.smoke { 1_000 } else { 100_000 };
    let big_protocol = Broadcast::new(big_n, 0, 16);
    let big_config = SimulatorConfig::builder(big_n)
        .model(model)
        .chunk_len(16)
        .build();
    let big_sim = RewindSimulator::new(&big_protocol, big_config);
    let mut big_inputs = vec![0usize; big_n];
    big_inputs[0] = 0xBEE5;
    let mut big_scratch = SoaScratch::default();
    suite.bench("scheme.rewind.n1e5", || {
        let out = big_sim
            .simulate_with_scratch(&big_inputs, model, 0x1E5, &mut big_scratch)
            .expect("within budget");
        std::hint::black_box(out.stats().energy);
        out.stats().channel_rounds
    });
}

fn crosstrial_benches(suite: &mut Suite) {
    // --- runner.skewed: a Monte Carlo fan-out whose per-trial cost is
    // deliberately skewed ~100x with the trial index (party counts
    // 8..=800), driven through the TrialRunner. Pins the cross-trial
    // scheduling + per-trial buffer story.
    let trials = if suite.args.smoke { 16 } else { 256 };
    let runner = suite.runner(4);
    suite.bench("runner.skewed", || {
        let out =
            runner.run_with_scratch(0xBEE5, trials, Vec::new, |t, states: &mut Vec<Vec<u64>>| {
                // 100x cost skew: index 0 simulates 800 parties, most
                // simulate 8. The per-party state vectors live in the
                // worker's scratch arena and are zeroed, not reallocated.
                let parties = if t.index % 8 == 0 { 800 } else { 8 };
                let rounds = 4usize;
                if states.len() < parties {
                    states.resize_with(parties, || vec![0u64; 16]);
                }
                let states = &mut states[..parties];
                for st in states.iter_mut() {
                    st.fill(0);
                }
                let mut acc = t.seed | 1;
                for _ in 0..rounds {
                    for st in states.iter_mut() {
                        acc = acc
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(t.seed | 1);
                        st[(acc % 16) as usize] ^= acc;
                    }
                }
                states.iter().flatten().fold(0u64, |a, &b| a ^ b)
            });
        std::hint::black_box(out.iter().fold(0u64, |a, &b| a ^ b));
        trials
    });

    // --- runner.batch: the TrialRunner's lane-group dispatch — dynamic
    // chunks claimed as 64-seed groups and pushed through
    // simulate_batch, merged in trial-index order. Pins the end-to-end
    // Monte Carlo fan-out an experiment binary pays per sweep point.
    let batch_trials = if suite.args.smoke { 8 } else { 192 };
    let n = 8usize;
    let protocol = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (5 * i + 3) % (2 * n)).collect();
    let two = NoiseModel::Correlated { epsilon: 0.1 };
    let config = SimulatorConfig::builder(n).model(two).build();
    let rep = RepetitionSimulator::new(&protocol, config);
    let runner = suite.runner(4);
    suite.bench("runner.batch", || {
        let outs = runner.run_simulations(0xBA7C, batch_trials, &rep, &inputs, two);
        let ok = outs.iter().filter(|r| r.is_ok()).count();
        std::hint::black_box(ok);
        batch_trials
    });

    // --- code_cache: the owners-phase code table an experiment's config
    // describes, requested once per trial (as the rewind/hierarchical
    // simulators do per simulate() call).
    let builds = (suite.args.rounds / 2_000).max(2);
    suite.bench("code_cache", || {
        // One cache per experiment run: the first request builds the
        // table, every later trial gets the shared Arc back.
        let cache = std::sync::Arc::new(CodeCache::new());
        let config = SimulatorConfig::builder(16)
            .model(two)
            .code_cache(std::sync::Arc::clone(&cache))
            .build();
        let mut sink = 0usize;
        for _ in 0..builds {
            sink += config.build_code().codeword_len();
        }
        std::hint::black_box(sink);
        builds
    });

    // --- decode_packed: one owners-phase symbol roundtrip (encode the
    // turn-holder's codeword, ML-decode the received word), the inner
    // loop of every owners iteration.
    let decodes = (suite.args.rounds / 20).max(8);
    let code = RandomCode::with_length(33, 96, 0xC0DE);
    suite.bench("decode_packed", || {
        let mut sink = 0usize;
        for i in 0..decodes {
            let sym = i % 33;
            let word = code.encode_packed(sym);
            sink += code.decode_packed(&word, BitMetric::Hamming);
        }
        std::hint::black_box(sink);
        decodes
    });
}

/// Pulls `"<name>":{"ns_per_op":<float>` values back out of a JSON file
/// previously written by this harness. A full JSON parser would be
/// overkill for a format we emit ourselves.
fn read_baseline(path: &PathBuf) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
    // A file produced with --baseline embeds its *own* "baseline"
    // section; only the leading "results" section describes that run.
    let results_only = match text.find("\"baseline\":") {
        Some(pos) => &text[..pos],
        None => text.as_str(),
    };
    let mut out = Vec::new();
    let marker = "\"ns_per_op\":";
    let mut search = results_only;
    while let Some(pos) = search.find(marker) {
        let head = &search[..pos];
        // The benchmark name is the nearest preceding quoted key that
        // owns this object: ..."name":{"ns_per_op":...
        if let Some(open) = head.rfind(":{") {
            let key_end = open;
            if let Some(q2) = head[..key_end].rfind('"') {
                if let Some(q1) = head[..q2].rfind('"') {
                    let name = &head[q1 + 1..q2];
                    let tail = &search[pos + marker.len()..];
                    let end = tail
                        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                        .unwrap_or(tail.len());
                    if let Ok(v) = tail[..end].parse::<f64>() {
                        out.push((name.to_owned(), v));
                    }
                }
            }
        }
        search = &search[pos + marker.len()..];
    }
    out
}

pub fn main() {
    let args = Args::parse();
    let baseline = args.baseline.as_ref().map(read_baseline);
    let mut obs_args: Vec<String> = Vec::new();
    if args.progress {
        obs_args.push("--progress".into());
    }
    if let Some(p) = &args.profile {
        obs_args.push(format!("--profile={}", p.display()));
    }
    let observation = Observation::from_args("bench_hotpaths", 0xBEE5, &obs_args);
    // Instrumented code outside the TrialRunner (direct Executor /
    // simulate_batch benches) reports through the ambient install.
    let ambient = observation.install_ambient();
    let mut suite = Suite {
        args,
        results: Vec::new(),
        observer: observation.observer(),
    };

    channel_benches(&mut suite);
    executor_benches(&mut suite);
    lane_benches(&mut suite);
    scheme_benches(&mut suite);
    soa_benches(&mut suite);
    crosstrial_benches(&mut suite);

    drop(ambient);
    observation.finish(None);

    let mut results = Json::object();
    for (name, ns, ops) in &suite.results {
        let mut entry = Json::object();
        entry.set("ns_per_op", *ns).set("ops_per_iter", *ops);
        results.set(name, entry);
    }

    let mut root = Json::object();
    root.set("schema", "bench_hotpaths/v1");
    let mut cfg = Json::object();
    // Host provenance: pinned numbers are only comparable on similar
    // hardware, so record where they came from. bench_compare.sh warns
    // (rather than failing) when the baseline's host fields differ.
    let host_cores = std::thread::available_parallelism().map_or(0, std::num::NonZero::get);
    let beeps_threads = std::env::var("BEEPS_THREADS").unwrap_or_default();
    cfg.set("iters", suite.args.iters)
        .set("rounds", suite.args.rounds)
        .set("scheme_trials", suite.args.scheme_trials)
        .set("parties", PARTIES)
        .set("epsilon", EPS)
        .set("smoke", suite.args.smoke)
        .set("host_cores", host_cores)
        .set("beeps_threads", beeps_threads.as_str());
    root.set("config", cfg);
    root.set("results", results);

    // Lane-vs-scalar ratios from this run (independent of --baseline):
    // keyed by the scalar benchmark name, gated by bench_compare.sh.
    let ns_of = |name: &str| {
        suite
            .results
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, ns, _)| ns)
    };
    let mut lanes = Json::object();
    println!();
    for (scalar, lane) in LANE_PAIRS {
        if let (Some(s), Some(l)) = (ns_of(scalar), ns_of(lane)) {
            if l > 0.0 {
                lanes.set(scalar, s / l);
                println!("{scalar:<40} lanes {:>8.2}x", s / l);
            }
        }
    }
    root.set("lanes", lanes);

    // Scaling ratios from this run — the collapsed engine and the
    // sparse channel against their pre-scaling twins, keyed by the slow
    // twin's name; bench_compare.sh gates these at >= 3x in full mode.
    let mut soa = Json::object();
    for (slow, fast) in SOA_PAIRS {
        if let (Some(s), Some(f)) = (ns_of(slow), ns_of(fast)) {
            if f > 0.0 {
                soa.set(slow, s / f);
                println!("{slow:<40} soa   {:>8.2}x", s / f);
            }
        }
    }
    root.set("soa", soa);

    if let Some(base) = baseline {
        let mut before = Json::object();
        let mut speedup = Json::object();
        for (name, ns) in &base {
            let mut entry = Json::object();
            entry.set("ns_per_op", *ns);
            before.set(name, entry);
            if let Some((_, now, _)) = suite.results.iter().find(|(n, _, _)| n == name) {
                if *now > 0.0 {
                    speedup.set(name, ns / now);
                }
            }
        }
        root.set("baseline", before);
        root.set("speedup", speedup);
        println!();
        for (name, ns) in &base {
            if let Some((_, now, _)) = suite.results.iter().find(|(n, _, _)| n == name) {
                println!("{name:<40} speedup {:>8.2}x", ns / now);
            }
        }
    }

    std::fs::write(&suite.args.out, root.render() + "\n").expect("write benchmark output");
    println!("\nwrote {}", suite.args.out.display());
}
