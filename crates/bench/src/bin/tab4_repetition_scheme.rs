//! **Experiment E9 / Table 4 — footnote 1.**
//!
//! "Protocols of length polynomial in n can trivially be simulated by
//! repeating every round O(log n) times and taking the majority." The
//! table sweeps the repetition count for protocols of length `T = 2n` and
//! `T ≈ n²` and shows (i) success rates climbing to 1 as `r` passes
//! `Θ(log T)`, and (ii) the longer protocol needing more repetitions —
//! the union-bound dependence on `T` that the rewind scheme removes.
//!
//! Trials run on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`). The trial seed stream depends only on the protocol
//! length, so every `r` in a column sees the same inputs and channel
//! seeds — a paired sweep — and the rates are thread-count independent.

use beeps_bench::{trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{run_noiseless, NoiseModel};
use beeps_core::{RepetitionSimulator, Simulator, SimulatorConfig};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::MultiOr;
use rand::Rng;

fn success_rate(
    runner: &TrialRunner,
    n: usize,
    t_len: usize,
    r: usize,
    trials: usize,
    seed0: u64,
    all_metrics: &mut MetricsRegistry,
) -> f64 {
    let model = NoiseModel::Correlated { epsilon: 1.0 / 3.0 };
    let p = MultiOr::new(n, t_len);
    let mut config = SimulatorConfig::builder(n).model(model).build();
    config.repetitions = r;
    let sim = RepetitionSimulator::new(&p, config);
    let (records, m) =
        runner.run_with_metrics(trial_seed(seed0, t_len as u64), trials, |trial, metrics| {
            let mut input_rng = trial.sub_rng(0);
            let inputs: Vec<Vec<bool>> = (0..n)
                .map(|_| (0..t_len).map(|_| input_rng.gen_bool(0.2)).collect())
                .collect();
            let truth = run_noiseless(&p, &inputs);
            let out = sim
                .simulate_with_metrics(&inputs, model, trial.seed, metrics)
                .unwrap();
            out.transcript() == truth.transcript()
        });
    all_metrics.merge_from(&m);
    records.iter().filter(|&&ok| ok).count() as f64 / trials as f64
}

pub fn main() {
    let n = 16;
    let trials = 40usize;
    let short = 2 * n;
    let long = n * n;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("tab4_repetition_scheme", 0x7AB4);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        &format!("E9: repetition-scheme success vs r at eps=1/3 (n={n}; T={short} and T={long})"),
        &["r", "success (T=2n)", "success (T=n^2)"],
    );
    let mut all_metrics = MetricsRegistry::new();
    for r in [1usize, 9, 17, 25, 33, 41, 49, 57, 65, 73] {
        let s_short = success_rate(&runner, n, short, r, trials, 0x7AB4, &mut all_metrics);
        let s_long = success_rate(&runner, n, long, r, trials, 0x7AB5, &mut all_metrics);
        table.row(&[&r, &format!("{s_short:.2}"), &format!("{s_long:.2}")]);
    }
    table.print();
    println!("paper: footnote 1 — r = O(log n) repetitions suffice for poly(n)-length");
    println!("protocols; the needed r grows with log T, which is why the general");
    println!("Theorem 1.2 needs the chunk/owners/rewind machinery instead.");

    let mut log = ExperimentLog::new("tab4_repetition_scheme");
    log.field("n", n)
        .field("trials", trials)
        .field("epsilon", 1.0 / 3.0)
        .field("base_seed_short", 0x7AB4u64)
        .field("base_seed_long", 0x7AB5u64)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
