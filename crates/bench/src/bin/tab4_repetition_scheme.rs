//! **Experiment E9 / Table 4 — footnote 1.**
//!
//! "Protocols of length polynomial in n can trivially be simulated by
//! repeating every round O(log n) times and taking the majority." The
//! table sweeps the repetition count for protocols of length `T = 2n` and
//! `T ≈ n²` and shows (i) success rates climbing to 1 as `r` passes
//! `Θ(log T)`, and (ii) the longer protocol needing more repetitions —
//! the union-bound dependence on `T` that the rewind scheme removes.

use beeps_bench::Table;
use beeps_channel::{run_noiseless, NoiseModel};
use beeps_core::{RepetitionSimulator, SimulatorConfig};
use beeps_protocols::MultiOr;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn success_rate(n: usize, t_len: usize, r: usize, trials: u64, seed0: u64) -> f64 {
    let model = NoiseModel::Correlated { epsilon: 1.0 / 3.0 };
    let p = MultiOr::new(n, t_len);
    let mut config = SimulatorConfig::for_channel(n, model);
    config.repetitions = r;
    let sim = RepetitionSimulator::new(&p, config);
    let mut rng = StdRng::seed_from_u64(seed0);
    let mut good = 0u32;
    for seed in 0..trials {
        let inputs: Vec<Vec<bool>> = (0..n)
            .map(|_| (0..t_len).map(|_| rng.gen_bool(0.2)).collect())
            .collect();
        let truth = run_noiseless(&p, &inputs);
        let out = sim.simulate(&inputs, model, seed0 + seed).unwrap();
        if out.transcript() == truth.transcript() {
            good += 1;
        }
    }
    f64::from(good) / trials as f64
}

pub fn main() {
    let n = 16;
    let trials = 40u64;
    let short = 2 * n;
    let long = n * n;
    let mut table = Table::new(
        &format!("E9: repetition-scheme success vs r at eps=1/3 (n={n}; T={short} and T={long})"),
        &["r", "success (T=2n)", "success (T=n^2)"],
    );
    for r in [1usize, 9, 17, 25, 33, 41, 49, 57, 65, 73] {
        let s_short = success_rate(n, short, r, trials, 0x7AB4);
        let s_long = success_rate(n, long, r, trials, 0x7AB5);
        table.row(&[&r, &format!("{s_short:.2}"), &format!("{s_long:.2}")]);
    }
    table.print();
    println!("paper: footnote 1 — r = O(log n) repetitions suffice for poly(n)-length");
    println!("protocols; the needed r grows with log T, which is why the general");
    println!("Theorem 1.2 needs the chunk/owners/rewind machinery instead.");
}
