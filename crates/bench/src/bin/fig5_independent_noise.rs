//! **Experiment E8 / Figure 5 — §1.2: independent noise.**
//!
//! The paper notes Theorem 1.2's scheme also works when every party
//! receives its own independently corrupted copy of each round (though the
//! lower-bound proof does not transfer). This experiment re-runs E1 over
//! the independent-noise channel and additionally reports the transcript-
//! agreement rate — the quantity that is automatic under correlated noise
//! but must be *earned* under independent noise.

use beeps_bench::{f3, Table};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{RewindSimulator, SimulatorConfig};
use beeps_protocols::InputSet;
use rand::{rngs::StdRng, Rng, SeedableRng};

pub fn main() {
    let eps = 0.1;
    let model = NoiseModel::Independent { epsilon: eps };
    let trials = 10u64;
    let mut table = Table::new(
        &format!("E8: rewind scheme over independent noise (eps={eps})"),
        &["n", "overhead", "success", "agreement"],
    );
    let mut rng = StdRng::seed_from_u64(0xF165);

    for n in [4usize, 8, 16, 32, 64] {
        let protocol = InputSet::new(n);
        let sim = RewindSimulator::new(&protocol, SimulatorConfig::for_channel(n, model));
        let mut rounds = 0usize;
        let mut good = 0u32;
        let mut agree = 0u32;
        let mut done = 0u32;
        for seed in 0..trials {
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            let truth = run_noiseless(&protocol, &inputs);
            if let Ok(out) = sim.simulate(&inputs, model, seed) {
                done += 1;
                rounds += out.stats().channel_rounds;
                if out.transcript() == truth.transcript() {
                    good += 1;
                }
                if out.stats().agreement {
                    agree += 1;
                }
            }
        }
        let overhead = rounds as f64 / done.max(1) as f64 / protocol.length() as f64;
        table.row(&[
            &n,
            &f3(overhead),
            &format!("{good}/{trials}"),
            &format!("{agree}/{done}"),
        ]);
    }
    table.print();
    println!("paper: §1.2 — Theorem 1.2 holds for independent noise as well; whether");
    println!("Omega(log n) is also necessary there is the paper's main open problem.");
}
