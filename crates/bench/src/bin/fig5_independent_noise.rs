//! **Experiment E8 / Figure 5 — §1.2: independent noise.**
//!
//! The paper notes Theorem 1.2's scheme also works when every party
//! receives its own independently corrupted copy of each round (though the
//! lower-bound proof does not transfer). This experiment re-runs E1 over
//! the independent-noise channel and additionally reports the transcript-
//! agreement rate — the quantity that is automatic under correlated noise
//! but must be *earned* under independent noise.
//!
//! Trials run on the shared [`TrialRunner`] (`--threads N` /
//! `BEEPS_THREADS`) with per-trial `(base_seed, n, trial)` seed streams,
//! so results are thread-count independent.

use beeps_bench::{f3, trial_seed, ExperimentLog, Observation, Table, TrialRunner};
use beeps_channel::{run_noiseless, NoiseModel, Protocol};
use beeps_core::{RewindSimulator, Simulator, SimulatorConfig};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::InputSet;
use rand::Rng;

pub fn main() {
    let eps = 0.1;
    let model = NoiseModel::Independent { epsilon: eps };
    let trials = 10usize;
    let base_seed = 0xF165u64;
    let runner = TrialRunner::from_cli();
    let observation = Observation::from_cli("fig5_independent_noise", base_seed);
    let runner = observation.attach(runner);
    let mut table = Table::new(
        &format!("E8: rewind scheme over independent noise (eps={eps})"),
        &["n", "overhead", "success", "agreement"],
    );
    let mut all_metrics = MetricsRegistry::new();

    for n in [4usize, 8, 16, 32, 64] {
        let protocol = InputSet::new(n);
        let sim = RewindSimulator::new(&protocol, SimulatorConfig::builder(n).model(model).build());

        let (records, m) =
            runner.run_with_metrics(trial_seed(base_seed, n as u64), trials, |trial, metrics| {
                let mut input_rng = trial.sub_rng(0);
                let inputs: Vec<usize> = (0..n).map(|_| input_rng.gen_range(0..2 * n)).collect();
                let truth = run_noiseless(&protocol, &inputs);
                sim.simulate_with_metrics(&inputs, model, trial.seed, metrics)
                    .ok()
                    .map(|out| {
                        (
                            out.stats().channel_rounds,
                            out.transcript() == truth.transcript(),
                            out.stats().agreement,
                        )
                    })
            });
        all_metrics.merge_from(&m);

        let mut rounds = 0usize;
        let mut good = 0u32;
        let mut agree = 0u32;
        let mut done = 0u32;
        for (r, ok, agreed) in records.into_iter().flatten() {
            done += 1;
            rounds += r;
            good += u32::from(ok);
            agree += u32::from(agreed);
        }
        let overhead = rounds as f64 / f64::from(done.max(1)) / protocol.length() as f64;
        table.row(&[
            &n,
            &f3(overhead),
            &format!("{good}/{trials}"),
            &format!("{agree}/{done}"),
        ]);
    }
    table.print();
    println!("paper: §1.2 — Theorem 1.2 holds for independent noise as well; whether");
    println!("Omega(log n) is also necessary there is the paper's main open problem.");

    let mut log = ExperimentLog::new("fig5_independent_noise");
    log.field("base_seed", base_seed)
        .field("trials", trials)
        .field("epsilon", eps)
        .table(&table)
        .metrics(&all_metrics);
    log.save();
    observation.finish(Some(&all_metrics));
}
