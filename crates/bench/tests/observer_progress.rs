//! Progress-tracker contract under a skewed workload: the atomics the
//! stderr reporter samples must stay monotone while workers race, land
//! on the exact trial count, and cost nothing when no observer is
//! attached.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use beeps_bench::TrialRunner;
use beeps_observe::{ProgressTracker, RunInfo};

const TRIALS: usize = 600;

/// A trial whose cost varies by ~100×: every tenth trial burns one
/// hundred units of work, the rest burn one. The skew forces the
/// dynamic chunk queue to rebalance, which is exactly when a sloppy
/// counter would run backwards or overshoot.
fn skewed_trial(index: usize, seed: u64) -> u64 {
    let units = if index.is_multiple_of(10) { 100 } else { 1 };
    let mut acc = seed;
    for _ in 0..units * 200 {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    }
    acc
}

#[test]
fn progress_counters_are_monotone_and_exact_under_cost_skew() {
    let tracker = Arc::new(ProgressTracker::new());
    let runner = TrialRunner::new(4).with_observer(tracker.clone());

    // Sample concurrently with the run; every observation must be
    // monotone in every cumulative counter.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let tracker = Arc::clone(&tracker);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut last_done = 0u64;
            let mut last_chunks = 0u64;
            let mut samples = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = tracker.snapshot();
                assert!(
                    snap.trials_done >= last_done,
                    "trials_done ran backwards: {} -> {}",
                    last_done,
                    snap.trials_done
                );
                assert!(
                    snap.chunks_claimed >= last_chunks,
                    "chunks_claimed ran backwards"
                );
                assert!(
                    snap.trials_done <= TRIALS as u64,
                    "trials_done overshot the total: {}",
                    snap.trials_done
                );
                last_done = snap.trials_done;
                last_chunks = snap.chunks_claimed;
                samples += 1;
                thread::sleep(Duration::from_micros(200));
            }
            samples
        })
    };

    let out = runner.run(0xC0_57, TRIALS, |t| skewed_trial(t.index, t.seed));
    stop.store(true, Ordering::Relaxed);
    let samples = sampler.join().expect("sampler thread");
    assert!(samples > 0, "sampler never observed the run");

    assert_eq!(out.len(), TRIALS);
    let snap = tracker.snapshot();
    assert_eq!(snap.trials_done, TRIALS as u64, "exact final trial count");
    assert_eq!(snap.trials_total, TRIALS as u64);
    assert_eq!(snap.runs_started, 1);
    assert_eq!(snap.runs_completed, 1);
    assert!(
        snap.chunks_claimed >= 4,
        "a 4-worker skewed run claims several chunks: {}",
        snap.chunks_claimed
    );
    assert_eq!(
        snap.worker_claims.iter().sum::<u64>(),
        snap.chunks_claimed,
        "per-worker claims must add up to the chunk total"
    );
    assert!(snap.active_workers() >= 1);
}

#[test]
fn serial_observed_run_counts_exactly_once() {
    let tracker = Arc::new(ProgressTracker::new());
    let runner = TrialRunner::new(1).with_observer(tracker.clone());
    let out = runner.run(7, 37, |t| skewed_trial(t.index, t.seed));
    assert_eq!(out.len(), 37);
    let snap = tracker.snapshot();
    assert_eq!(snap.trials_done, 37);
    assert_eq!(snap.runs_completed, 1);
}

#[test]
fn unobserved_run_takes_the_inert_path() {
    let runner = TrialRunner::new(2);
    assert!(runner.observer().is_none());

    // No ambient observer is installed anywhere in a trial closure, so
    // the per-trial observability check is a single relaxed load that
    // answers false — the no-op path.
    let saw_active = Arc::new(AtomicBool::new(false));
    let saw = Arc::clone(&saw_active);
    let out = runner.run(11, 64, move |t| {
        if beeps_observe::is_active() {
            saw.store(true, Ordering::Relaxed);
        }
        skewed_trial(t.index, t.seed)
    });
    assert_eq!(out.len(), 64);
    assert!(
        !saw_active.load(Ordering::Relaxed),
        "no observer attached, yet the ambient hook reported active"
    );

    // And the results are bitwise what an observed run produces.
    let tracker = Arc::new(ProgressTracker::new());
    let observed = TrialRunner::new(2)
        .with_observer(tracker)
        .run(11, 64, |t| skewed_trial(t.index, t.seed));
    assert_eq!(out, observed, "observation must not perturb results");
}

#[test]
fn tracker_observer_hooks_are_worker_slot_safe() {
    use beeps_observe::Observer;

    let tracker = ProgressTracker::new();
    tracker.on_run_start(RunInfo {
        trials: 10,
        workers: 3,
    });
    // Workers far beyond the slot array must fold in, not panic.
    tracker.on_chunk_claimed(beeps_observe::MAIN_WORKER, 0, 5);
    tracker.on_chunk_completed(beeps_observe::MAIN_WORKER, 0, 5);
    tracker.on_chunk_claimed(1, 5, 5);
    tracker.on_chunk_completed(1, 5, 5);
    let snap = tracker.snapshot();
    assert_eq!(snap.trials_done, 10);
    assert_eq!(snap.chunks_claimed, 2);
    assert_eq!(snap.worker_claims.iter().sum::<u64>(), 2);
}
