//! Cross-scheme determinism contract for the metrics layer: the merged
//! [`MetricsRegistry`] a [`TrialRunner`] produces must be bitwise
//! identical at any thread count, for every simulation scheme; and
//! noise-free runs must report zero corruption and zero rewinds.
//! Attaching the full observer stack (progress + profiler + run log)
//! must not move a single bit of either results or metrics, and
//! neither must the scaling knobs (windowed transcript retention, the
//! sparse flip-list channel).

use std::sync::Arc;

use beeps_bench::{trial_seed, TrialRunner};
use beeps_channel::NoiseModel;
use beeps_core::{
    HierarchicalSimulator, NakedSimulator, OneToZeroSimulator, OwnedRoundsSimulator,
    RepetitionSimulator, RewindSimulator, Simulator, SimulatorConfig,
};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::{InputSet, RollCall};
use rand::Rng;

const N: usize = 6;
const TRIALS: usize = 9;

/// Runs `TRIALS` trials of `sim` under `model` at the given thread count
/// and returns the merged registry.
fn merged_registry<I: Clone + Sync, O>(
    sim: &(dyn Simulator<I, O> + Sync),
    model: NoiseModel,
    gen: &(dyn Fn(&mut rand::rngs::StdRng) -> Vec<I> + Sync),
    threads: usize,
) -> MetricsRegistry {
    let runner = TrialRunner::new(threads);
    let (_, merged) = runner.run_with_metrics(trial_seed(0xD37, N as u64), TRIALS, |trial, m| {
        let mut rng = trial.sub_rng(0);
        let inputs = gen(&mut rng);
        let _ = sim.simulate_with_metrics(&inputs, model, trial.seed, m);
    });
    merged
}

fn input_set_gen(rng: &mut rand::rngs::StdRng) -> Vec<usize> {
    (0..N).map(|_| rng.gen_range(0..2 * N)).collect()
}

fn roll_call_gen(rng: &mut rand::rngs::StdRng) -> Vec<bool> {
    (0..N).map(|_| rng.gen_bool(0.5)).collect()
}

/// Every scheme's merged registry is bitwise identical at 1, 2, and 8
/// threads (PartialEq covers the full deterministic section).
#[test]
fn merged_registries_are_thread_count_invariant_for_every_scheme() {
    let p = InputSet::new(N);
    let owned_p = RollCall::new(N);
    let two = NoiseModel::Correlated { epsilon: 0.05 };
    let down = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
    let config = || SimulatorConfig::builder(N).model(two).build();

    let naked = NakedSimulator::new(&p);
    let repetition = RepetitionSimulator::new(&p, config());
    let rewind = RewindSimulator::new(&p, config());
    let hierarchical = HierarchicalSimulator::new(&p, config());
    let one_to_zero = OneToZeroSimulator::new(&p, 2, 32.0);
    let owned = OwnedRoundsSimulator::new(&owned_p, SimulatorConfig::builder(N).model(two).build());

    let generic: [(
        &(dyn Simulator<usize, std::collections::BTreeSet<usize>> + Sync),
        NoiseModel,
    ); 5] = [
        (&naked, two),
        (&repetition, two),
        (&rewind, two),
        (&hierarchical, two),
        (&one_to_zero, down),
    ];
    for (sim, model) in generic {
        let serial = merged_registry(sim, model, &input_set_gen, 1);
        assert!(
            serial.counter(&format!("sim.{}.runs", sim.name())) == TRIALS as u64,
            "{}: every trial must be counted",
            sim.name()
        );
        for threads in [2, 8] {
            let parallel = merged_registry(sim, model, &input_set_gen, threads);
            assert_eq!(serial, parallel, "scheme {} threads {threads}", sim.name());
        }
    }

    let serial = merged_registry(&owned, two, &roll_call_gen, 1);
    for threads in [2, 8] {
        let parallel = merged_registry(&owned, two, &roll_call_gen, threads);
        assert_eq!(serial, parallel, "scheme owned_rounds threads {threads}");
    }
}

/// Independent noise exercises the batched 64-round mask blocks and the
/// per-party delivery path; the merged registry must stay bitwise
/// identical at 1, 2, and 8 threads there too (the batched sampler is
/// seeded per trial, so scheduling cannot leak into the masks).
#[test]
fn merged_registries_are_thread_count_invariant_under_independent_noise() {
    let p = InputSet::new(N);
    let indep = NoiseModel::Independent { epsilon: 0.05 };
    let config = SimulatorConfig::builder(N).model(indep).build();

    let naked = NakedSimulator::new(&p);
    let repetition = RepetitionSimulator::new(&p, config.clone());
    let rewind = RewindSimulator::new(&p, config);

    let schemes: [&(dyn Simulator<usize, std::collections::BTreeSet<usize>> + Sync); 3] =
        [&naked, &repetition, &rewind];
    for sim in schemes {
        let serial = merged_registry(sim, indep, &input_set_gen, 1);
        assert!(
            serial.counter(&format!("sim.{}.runs", sim.name())) == TRIALS as u64,
            "{}: every trial must be counted",
            sim.name()
        );
        for threads in [2, 8] {
            let parallel = merged_registry(sim, indep, &input_set_gen, threads);
            assert_eq!(
                serial,
                parallel,
                "scheme {} threads {threads} under independent noise",
                sim.name()
            );
        }
    }
}

/// The scaling knobs — a minimal committed-transcript retention window
/// (heavy rematerialization) and the sparse flip-list channel under
/// independent noise — must not open any thread-count dependence: the
/// merged registry stays bitwise identical at 1, 2, and 8 threads with
/// either knob engaged, for both collapsed-engine schemes that honor
/// the window.
#[test]
fn merged_registries_are_thread_count_invariant_with_scaling_knobs() {
    let p = InputSet::new(N);
    let two = NoiseModel::Correlated { epsilon: 0.05 };
    let indep = NoiseModel::Independent { epsilon: 0.05 };
    let windowed = |model: NoiseModel| {
        SimulatorConfig::builder(N)
            .model(model)
            .verify_window(1)
            .build()
    };

    let rewind_windowed = RewindSimulator::new(&p, windowed(two));
    let hier_windowed = HierarchicalSimulator::new(&p, windowed(two));
    let rewind_sparse = RewindSimulator::new(&p, windowed(indep));

    type SetSim<'a> = &'a (dyn Simulator<usize, std::collections::BTreeSet<usize>> + Sync);
    let cases: [(SetSim, NoiseModel, &str); 3] = [
        (&rewind_windowed, two, "rewind window=1"),
        (&hier_windowed, two, "hierarchical window=1"),
        (&rewind_sparse, indep, "rewind sparse channel"),
    ];
    for (sim, model, label) in cases {
        let serial = merged_registry(sim, model, &input_set_gen, 1);
        for threads in [2, 8] {
            let parallel = merged_registry(sim, model, &input_set_gen, threads);
            assert_eq!(serial, parallel, "{label} threads {threads}");
        }
    }
}

/// Adversarial cost skew: trial difficulty varies ~100x with the trial
/// index (party count 2 vs [`N`]·4, plus a rewind-prone channel), so
/// the dynamic chunk scheduler's trial-to-worker assignment genuinely
/// shifts between thread counts — including far more workers than
/// trials (64). Results and the merged registry must not move.
#[test]
fn merged_registries_survive_adversarial_cost_skew_up_to_64_threads() {
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let small = InputSet::new(2);
    let large = InputSet::new(N * 4);
    let small_sim = RewindSimulator::new(&small, SimulatorConfig::builder(2).model(model).build());
    let large_sim =
        RewindSimulator::new(&large, SimulatorConfig::builder(N * 4).model(model).build());

    let run = |threads: usize| {
        let runner = TrialRunner::new(threads);
        runner.run_with_metrics(trial_seed(0x5EED, 1), 21, |trial, m| {
            // Every 4th trial simulates the 12x-larger network.
            let (n, sim): (usize, &(dyn Simulator<usize, _> + Sync)) = if trial.index % 4 == 0 {
                (N * 4, &large_sim)
            } else {
                (2, &small_sim)
            };
            let mut rng = trial.sub_rng(0);
            let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
            sim.simulate_with_metrics(&inputs, model, trial.seed, m)
                .map(|out| out.outputs().to_vec())
                .ok()
        })
    };

    let (serial_results, serial_metrics) = run(1);
    for threads in [2, 8, 64] {
        let (results, metrics) = run(threads);
        assert_eq!(results, serial_results, "{threads} threads: results moved");
        assert_eq!(metrics, serial_metrics, "{threads} threads: metrics moved");
        let a: Vec<u64> = metrics.events().iter().map(|e| e.round).collect();
        let b: Vec<u64> = serial_metrics.events().iter().map(|e| e.round).collect();
        assert_eq!(a, b, "{threads} threads: event order moved");
    }
}

/// The lane-grouped batch path: for every scheme and every noise
/// regime, `run_simulations_with_metrics` must return per-trial results
/// bitwise equal to scalar `simulate` calls with the same derived
/// seeds, and a merged registry that is identical at 1, 2, and 8
/// threads (chunk boundaries become lane-group boundaries, which must
/// not be observable).
#[test]
fn batch_dispatch_matches_per_trial_at_every_thread_count() {
    let p = InputSet::new(N);
    let owned_p = RollCall::new(N);
    let two = NoiseModel::Correlated { epsilon: 0.05 };
    let config = || SimulatorConfig::builder(N).model(two).build();

    let naked = NakedSimulator::new(&p);
    let repetition = RepetitionSimulator::new(&p, config());
    let rewind = RewindSimulator::new(&p, config());
    let hierarchical = HierarchicalSimulator::new(&p, config());
    let one_to_zero = OneToZeroSimulator::new(&p, 2, 32.0);
    let owned = OwnedRoundsSimulator::new(&owned_p, SimulatorConfig::builder(N).model(two).build());

    let models = [
        NoiseModel::Noiseless,
        NoiseModel::Correlated { epsilon: 0.1 },
        NoiseModel::OneSidedZeroToOne { epsilon: 0.2 },
        NoiseModel::OneSidedOneToZero { epsilon: 0.2 },
        NoiseModel::Independent { epsilon: 0.05 },
    ];
    let base = trial_seed(0xBA7C, 1);
    let trials = TRIALS * 8; // spans several parallel chunks

    let inputs: Vec<usize> = vec![3, 0, 8, 8, 11, 5];
    let generic: [&(dyn Simulator<usize, std::collections::BTreeSet<usize>> + Sync); 5] =
        [&naked, &repetition, &rewind, &hierarchical, &one_to_zero];
    for sim in generic {
        for model in models {
            let reference: Vec<_> = (0..trials)
                .map(|i| sim.simulate(&inputs, model, trial_seed(base, i as u64)))
                .collect();
            let (serial, serial_metrics) =
                TrialRunner::new(1).run_simulations_with_metrics(base, trials, sim, &inputs, model);
            assert_eq!(
                serial,
                reference,
                "{} over {model}: batch diverged from per-trial simulate",
                sim.name()
            );
            for threads in [2, 8] {
                let (parallel, metrics) = TrialRunner::new(threads)
                    .run_simulations_with_metrics(base, trials, sim, &inputs, model);
                assert_eq!(parallel, reference, "{} {threads} threads", sim.name());
                assert_eq!(
                    metrics,
                    serial_metrics,
                    "{} over {model}: merged registry moved at {threads} threads",
                    sim.name()
                );
            }
        }
    }

    let inputs: Vec<bool> = vec![true, false, true, true, false, false];
    for model in models {
        let reference: Vec<_> = (0..trials)
            .map(|i| Simulator::simulate(&owned, &inputs, model, trial_seed(base, i as u64)))
            .collect();
        for threads in [1, 2, 8] {
            let (results, _) = TrialRunner::new(threads)
                .run_simulations_with_metrics(base, trials, &owned, &inputs, model);
            assert_eq!(results, reference, "owned_rounds {threads} threads");
        }
    }
}

/// The full production observer stack: progress tracker + phase
/// profiler + run log writing to an in-memory sink, fanned out exactly
/// like `--progress --profile` builds it.
fn full_observer_stack() -> Arc<dyn beeps_observe::Observer> {
    use beeps_observe::{MultiObserver, Observer, PhaseProfiler, ProgressTracker, RunLog, RunMeta};

    let meta = RunMeta {
        run_id: "determinism_check".to_owned(),
        config_digest: beeps_observe::config_digest(&["determinism_check"]),
        base_seed: 0,
    };
    let runlog = RunLog::to_writer(Box::new(std::io::sink()), &meta);
    Arc::new(
        MultiObserver::new()
            .with(Arc::new(ProgressTracker::new()) as Arc<dyn Observer>)
            .with(Arc::new(PhaseProfiler::new()) as Arc<dyn Observer>)
            .with(Arc::new(runlog) as Arc<dyn Observer>),
    )
}

/// Observing a run is a pure side channel: for every scheme, per-trial
/// results AND the merged registry from a fully observed runner
/// (progress + profiler + run log) are bitwise identical to the
/// unobserved ones at 1, 2, and 8 threads — through both the scalar
/// metrics path and the lane-grouped batch path.
#[test]
fn observed_runs_are_bitwise_identical_to_unobserved_runs() {
    let p = InputSet::new(N);
    let owned_p = RollCall::new(N);
    let two = NoiseModel::Correlated { epsilon: 0.05 };
    let config = || SimulatorConfig::builder(N).model(two).build();

    let naked = NakedSimulator::new(&p);
    let repetition = RepetitionSimulator::new(&p, config());
    let rewind = RewindSimulator::new(&p, config());
    let hierarchical = HierarchicalSimulator::new(&p, config());
    let one_to_zero = OneToZeroSimulator::new(&p, 2, 32.0);
    let owned = OwnedRoundsSimulator::new(&owned_p, SimulatorConfig::builder(N).model(two).build());
    let down = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };

    let base = trial_seed(0x0B5E, 7);
    let trials = TRIALS * 4;
    let inputs: Vec<usize> = vec![3, 0, 8, 8, 11, 5];

    let generic: [(
        &(dyn Simulator<usize, std::collections::BTreeSet<usize>> + Sync),
        NoiseModel,
    ); 5] = [
        (&naked, two),
        (&repetition, two),
        (&rewind, two),
        (&hierarchical, two),
        (&one_to_zero, down),
    ];
    for (sim, model) in generic {
        // Scalar per-trial path, unobserved baseline at one thread.
        let scalar = |threads: usize, observed: bool| {
            let mut runner = TrialRunner::new(threads);
            if observed {
                runner = runner.with_observer(full_observer_stack());
            }
            runner.run_with_metrics(base, trials, |trial, m| {
                let mut rng = trial.sub_rng(0);
                let trial_inputs = input_set_gen(&mut rng);
                sim.simulate_with_metrics(&trial_inputs, model, trial.seed, m)
                    .map(|out| out.outputs().to_vec())
                    .ok()
            })
        };
        let (base_results, base_metrics) = scalar(1, false);
        for threads in [1, 2, 8] {
            let (results, metrics) = scalar(threads, true);
            assert_eq!(
                results,
                base_results,
                "{}: observed scalar results moved at {threads} threads",
                sim.name()
            );
            assert_eq!(
                metrics,
                base_metrics,
                "{}: observed scalar metrics moved at {threads} threads",
                sim.name()
            );
        }

        // Lane-grouped batch path.
        let batch = |threads: usize, observed: bool| {
            let mut runner = TrialRunner::new(threads);
            if observed {
                runner = runner.with_observer(full_observer_stack());
            }
            runner.run_simulations_with_metrics(base, trials, sim, &inputs, model)
        };
        let (batch_results, batch_metrics) = batch(1, false);
        for threads in [1, 2, 8] {
            let (results, metrics) = batch(threads, true);
            assert_eq!(
                results,
                batch_results,
                "{}: observed batch results moved at {threads} threads",
                sim.name()
            );
            assert_eq!(
                metrics,
                batch_metrics,
                "{}: observed batch metrics moved at {threads} threads",
                sim.name()
            );
        }
    }

    // The sixth scheme has a distinct input type; same contract.
    let bool_inputs: Vec<bool> = vec![true, false, true, true, false, false];
    let owned_batch = |threads: usize, observed: bool| {
        let mut runner = TrialRunner::new(threads);
        if observed {
            runner = runner.with_observer(full_observer_stack());
        }
        runner.run_simulations_with_metrics(base, trials, &owned, &bool_inputs, two)
    };
    let (owned_results, owned_metrics) = owned_batch(1, false);
    for threads in [1, 2, 8] {
        let (results, metrics) = owned_batch(threads, true);
        assert_eq!(
            results, owned_results,
            "owned_rounds: observed results moved at {threads} threads"
        );
        assert_eq!(
            metrics, owned_metrics,
            "owned_rounds: observed metrics moved at {threads} threads"
        );
    }
}

/// At ε = 0 no round is ever corrupted, so every scheme reports zero
/// `corrupted_rounds` and zero `rewinds`.
#[test]
fn epsilon_zero_runs_report_zero_flip_and_rewind_counters() {
    let p = InputSet::new(N);
    let quiet = NoiseModel::Correlated { epsilon: 0.0 };
    let config = || SimulatorConfig::builder(N).model(quiet).build();

    let naked = NakedSimulator::new(&p);
    let repetition = RepetitionSimulator::new(&p, config());
    let rewind = RewindSimulator::new(&p, config());
    let hierarchical = HierarchicalSimulator::new(&p, config());
    let schemes: [&(dyn Simulator<usize, std::collections::BTreeSet<usize>> + Sync); 4] =
        [&naked, &repetition, &rewind, &hierarchical];

    for sim in schemes {
        let merged = merged_registry(sim, quiet, &input_set_gen, 2);
        let name = sim.name();
        assert_eq!(
            merged.counter(&format!("sim.{name}.corrupted_rounds")),
            0,
            "{name}: quiet channel must corrupt nothing"
        );
        assert_eq!(
            merged.counter(&format!("sim.{name}.rewinds")),
            0,
            "{name}: nothing to repair without noise"
        );
        assert_eq!(
            merged.counter(&format!("sim.{name}.failures.budget_exhausted")),
            0
        );

        // The lane-grouped batch path must report the same quiet
        // channel: zero flips and zero rewinds through simulate_batch.
        let inputs: Vec<usize> = vec![1, 4, 9, 2, 0, 7];
        let (_, batch_merged) = TrialRunner::new(2).run_simulations_with_metrics(
            trial_seed(0xD37, N as u64),
            TRIALS,
            sim,
            &inputs,
            quiet,
        );
        assert_eq!(
            batch_merged.counter(&format!("sim.{name}.corrupted_rounds")),
            0,
            "{name}: quiet batch path must corrupt nothing"
        );
        assert_eq!(batch_merged.counter(&format!("sim.{name}.rewinds")), 0);
    }
}
