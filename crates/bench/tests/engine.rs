//! Integration tests for the experiment engine: thread-count
//! independence of rendered experiment logs, and executor invariants
//! when trials are fanned out through [`TrialRunner`].

use beeps_bench::{ExperimentLog, Table, TrialRunner};
use beeps_channel::{run_noiseless, run_protocol, NoiseModel, Protocol};
use beeps_core::{RewindSimulator, SimulatorConfig};
use beeps_protocols::InputSet;
use rand::Rng;

/// Runs a small but real experiment (rewind simulator on `InputSet_6`
/// under correlated noise) and renders its full JSON log.
fn render_with(threads: usize) -> String {
    let runner = TrialRunner::new(threads);
    let n = 6;
    let protocol = InputSet::new(n);
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let sim = RewindSimulator::new(&protocol, SimulatorConfig::builder(n).model(model).build());
    let records = runner.run(0xBEE5, 12, |trial| {
        let mut rng = trial.sub_rng(0);
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        match sim.simulate(&inputs, model, trial.seed) {
            Ok(out) => (out.stats().channel_rounds, true),
            Err(_) => (0, false),
        }
    });
    let mut table = Table::new("engine determinism", &["trial", "rounds", "done"]);
    for (i, (rounds, done)) in records.iter().enumerate() {
        table.row(&[&i, rounds, done]);
    }
    let mut log = ExperimentLog::new("engine_identity_check");
    log.field("base_seed", 0xBEE5u64)
        .field("trials", 12usize)
        .field("epsilon", 0.1)
        .table(&table);
    log.render()
}

/// The tentpole guarantee: the same base seed renders byte-identical
/// experiment JSON regardless of how many worker threads ran the
/// trials.
#[test]
fn parallel_and_serial_runs_render_identical_json() {
    let serial = render_with(1);
    for threads in [2, 4, 8] {
        assert_eq!(serial, render_with(threads), "{threads} threads diverged");
    }
}

/// Executor invariants hold for every trial fanned out by the runner:
/// energy counts at least one beep per round whose true OR is 1,
/// corruption counts stay within the round budget, and a noiseless
/// channel neither corrupts nor deviates from the reference execution.
#[test]
fn executor_invariants_hold_under_the_runner() {
    let runner = TrialRunner::new(4);
    let n = 5;
    let protocol = InputSet::new(n);
    let length = protocol.length();
    let checks = runner.run(0xC0FFEE, 24, |trial| {
        let mut rng = trial.sub_rng(0);
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        let truth = run_noiseless(&protocol, &inputs);
        let noisy = run_protocol(
            &protocol,
            &inputs,
            NoiseModel::Correlated { epsilon: 0.2 },
            trial.seed,
        );
        let clean = run_protocol(&protocol, &inputs, NoiseModel::Noiseless, trial.seed);
        let ones = noisy.true_ors().iter().filter(|&&b| b).count();
        [
            ("energy >= rounds with a beep", noisy.energy() >= ones),
            ("energy <= n * rounds", noisy.energy() <= n * length),
            (
                "corruption within budget",
                noisy.corrupted_rounds() <= length,
            ),
            ("noiseless channel is clean", clean.corrupted_rounds() == 0),
            (
                "noiseless ORs match reference",
                clean.true_ors() == truth.transcript(),
            ),
            (
                "noiseless outputs match reference",
                clean.outputs() == truth.outputs(),
            ),
        ]
    });
    for (i, trial_checks) in checks.iter().enumerate() {
        for (what, ok) in trial_checks {
            assert!(ok, "trial {i}: {what}");
        }
    }
}
