//! Criterion benchmarks for the lower-bound machinery: the exact ζ
//! analysis is the computational core of experiments E5/E7.

use beeps_channel::{run_protocol, NoiseModel};
use beeps_lowerbound::{min_repetitions_exact, ZetaAnalyzer};
use beeps_protocols::InputSet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_zeta_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("zeta_analyze");
    group.sample_size(20);
    let eps = 1.0 / 3.0;
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = InputSet::new(n);
            let inputs: Vec<usize> = (0..n).map(|i| (3 * i) % (2 * n)).collect();
            let exec = run_protocol(
                &p,
                &inputs,
                NoiseModel::OneSidedZeroToOne { epsilon: eps },
                42,
            );
            let pi = exec.views().shared().unwrap().to_vec();
            let analyzer = ZetaAnalyzer::new(&p, eps);
            b.iter(|| black_box(analyzer.analyze(black_box(&inputs), black_box(&pi))));
        });
    }
    group.finish();
}

fn bench_crossover_search(c: &mut Criterion) {
    c.bench_function("min_repetitions_exact_n256", |b| {
        b.iter(|| black_box(min_repetitions_exact(black_box(256), 1.0 / 3.0, 0.9)));
    });
}

criterion_group!(benches, bench_zeta_analysis, bench_crossover_search);
criterion_main!(benches);
