//! Criterion end-to-end benchmarks of the three coding schemes — one
//! complete simulation per iteration, wall-clock per simulated protocol
//! round being the figure of merit.

use beeps_channel::NoiseModel;
use beeps_core::{
    run_owners_phase, HierarchicalSimulator, OneToZeroSimulator, OwnedRoundsSimulator,
    RepetitionSimulator, RewindSimulator, SimulatorConfig,
};
use beeps_protocols::{InputSet, RollCall};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn inputs_for(n: usize) -> Vec<usize> {
    (0..n).map(|i| (5 * i + 1) % (2 * n)).collect()
}

fn bench_repetition_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("repetition_simulator");
    group.sample_size(20);
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    for n in [8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = InputSet::new(n);
            let inputs = inputs_for(n);
            let sim =
                RepetitionSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(sim.simulate(black_box(&inputs), model, seed).unwrap());
            });
        });
    }
    group.finish();
}

fn bench_rewind_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewind_simulator");
    group.sample_size(10);
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    for n in [8usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = InputSet::new(n);
            let inputs = inputs_for(n);
            let sim = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(sim.simulate(black_box(&inputs), model, seed).ok());
            });
        });
    }
    group.finish();
}

fn bench_one_to_zero_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_to_zero_simulator");
    group.sample_size(20);
    let model = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
    for n in [8usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = InputSet::new(n);
            let inputs = inputs_for(n);
            let sim = OneToZeroSimulator::new(&p, 2, 32.0);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(sim.simulate(black_box(&inputs), model, seed).ok());
            });
        });
    }
    group.finish();
}

fn bench_owners_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("owners_phase");
    group.sample_size(20);
    for n in [8usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let bits: Vec<Vec<bool>> = (0..n)
                .map(|i| (0..n).map(|j| (i + j) % 4 == 0).collect())
                .collect();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_owners_phase(
                    black_box(&bits),
                    NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 },
                    48,
                    7,
                    seed,
                ));
            });
        });
    }
    group.finish();
}

fn bench_hierarchical_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_simulator");
    group.sample_size(10);
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    for n in [8usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = InputSet::new(n);
            let inputs = inputs_for(n);
            let sim =
                HierarchicalSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(sim.simulate(black_box(&inputs), model, seed).ok());
            });
        });
    }
    group.finish();
}

fn bench_owned_rounds_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("owned_rounds_simulator");
    group.sample_size(20);
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    for n in [8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = RollCall::new(n);
            let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            let sim =
                OwnedRoundsSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(sim.simulate(black_box(&inputs), model, seed).ok());
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_repetition_simulator,
    bench_rewind_simulator,
    bench_hierarchical_simulator,
    bench_owned_rounds_simulator,
    bench_one_to_zero_simulator,
    bench_owners_phase
);
criterion_main!(benches);
