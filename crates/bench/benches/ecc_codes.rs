//! Criterion micro-benchmarks for the error-correcting-code substrate:
//! the owners phase spends its rounds on codeword encode/decode, so these
//! costs bound the wall-clock of every chunk iteration.

use beeps_ecc::GfField;
use beeps_ecc::{BitMetric, ConcatenatedCode, Hadamard, RandomCode, ReedSolomon, SymbolCode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_random_code(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_code_decode");
    for q in [17usize, 65, 257] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            let code = RandomCode::new(q, 12, 5);
            let word = code.encode(q / 2);
            b.iter(|| black_box(code.decode(black_box(&word), BitMetric::Hamming)));
        });
    }
    group.finish();
}

fn bench_random_code_z_metric(c: &mut Criterion) {
    let code = RandomCode::new(65, 12, 5);
    let word = code.encode(33);
    c.bench_function("random_code_decode_zup", |b| {
        b.iter(|| black_box(code.decode(black_box(&word), BitMetric::ZUp)));
    });
}

fn bench_reed_solomon(c: &mut Criterion) {
    let rs = ReedSolomon::new(GfField::new(8), 255, 223);
    let msg: Vec<u16> = (0..223).map(|i| (i * 7 % 256) as u16).collect();
    let clean = rs.encode(&msg);
    let mut noisy = clean.clone();
    for i in 0..16 {
        noisy[i * 15] ^= 0x55;
    }
    c.bench_function("rs_255_223_encode", |b| {
        b.iter(|| black_box(rs.encode(black_box(&msg))));
    });
    c.bench_function("rs_255_223_decode_16_errors", |b| {
        b.iter(|| black_box(rs.decode(black_box(&noisy)).unwrap()));
    });
}

fn bench_hadamard(c: &mut Criterion) {
    let code = Hadamard::new(8);
    let word = code.encode(100);
    c.bench_function("hadamard_256_decode", |b| {
        b.iter(|| black_box(code.decode(black_box(&word), BitMetric::Hamming)));
    });
}

fn bench_concatenated(c: &mut Criterion) {
    let code = ConcatenatedCode::for_alphabet(513, 4);
    let word = code.encode(300);
    c.bench_function("concat_rs_hadamard_decode", |b| {
        b.iter(|| black_box(code.decode(black_box(&word), BitMetric::Hamming)));
    });
}

criterion_group!(
    benches,
    bench_random_code,
    bench_random_code_z_metric,
    bench_reed_solomon,
    bench_hadamard,
    bench_concatenated
);
criterion_main!(benches);
