//! Criterion micro-benchmarks for the beeping-channel substrate: raw
//! round throughput per noise regime and executor scaling in `n`.

use beeps_channel::{run_noiseless, Channel, NoiseModel, Protocol, StochasticChannel};
use beeps_protocols::InputSet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_channel_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_rounds");
    for (name, model) in [
        ("noiseless", NoiseModel::Noiseless),
        ("correlated", NoiseModel::Correlated { epsilon: 1.0 / 3.0 }),
        (
            "one_sided_up",
            NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 },
        ),
        (
            "independent",
            NoiseModel::Independent { epsilon: 1.0 / 3.0 },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut ch = StochasticChannel::new(64, model, 7);
            let mut bit = false;
            b.iter(|| {
                bit = !bit;
                black_box(ch.transmit(black_box(bit)));
            });
        });
    }
    group.finish();
}

fn bench_noiseless_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("noiseless_input_set");
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = InputSet::new(n);
            let inputs: Vec<usize> = (0..n).map(|i| (7 * i) % (2 * n)).collect();
            b.iter(|| black_box(run_noiseless(&p, black_box(&inputs))));
        });
    }
    group.finish();
}

fn bench_protocol_beep_evaluation(c: &mut Criterion) {
    // Cost of one broadcast-function evaluation (the inner loop of every
    // simulator) for a representative protocol.
    let p = InputSet::new(128);
    let transcript = vec![false; 100];
    c.bench_function("beep_eval_input_set", |b| {
        b.iter(|| black_box(p.beep(black_box(3), black_box(&77), black_box(&transcript))));
    });
}

criterion_group!(
    benches,
    bench_channel_rounds,
    bench_noiseless_execution,
    bench_protocol_beep_evaluation
);
criterion_main!(benches);
