//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the tiny slice of `rand 0.8` it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods [`Rng::gen_range`] / [`Rng::gen_bool`].
//!
//! Unlike a casual stub, this subset is **bit-compatible with upstream
//! `rand 0.8` + `rand_chacha 0.3`** for the APIs it exposes:
//!
//! * [`rngs::StdRng`] is ChaCha12 with the block-buffer semantics of
//!   `rand_core::block::BlockRng` (64-word buffer = 4 blocks, including
//!   the buffer-straddling `next_u64` rule);
//! * [`SeedableRng::seed_from_u64`] expands the seed with the PCG32
//!   steps used by `rand_core 0.6`'s default implementation;
//! * [`Rng::gen_bool`] matches `Bernoulli` (one `u64` draw compared
//!   against `(p * 2^64) as u64`; `p == 1.0` draws nothing);
//! * [`Rng::gen_range`] matches `UniformSampler::sample_single[_inclusive]`
//!   (widening-multiply rejection sampling; 8/16/32-bit integers draw
//!   `u32`s, 64-bit integers draw `u64`s; floats use the 52-bit
//!   exponent-trick draw).
//!
//! Bit-compatibility matters because the statistical thresholds in this
//! repository's tests (success counts out of `N` seeded trials) were
//! tuned against upstream `rand` streams; an RNG that is merely "as
//! good" can land on the other side of a tight margin.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators (stub: only [`rngs::StdRng`]).
pub mod rngs {
    /// Words per output buffer: 4 ChaCha blocks, as `rand_chacha`'s
    /// `Array64<u32>`.
    const BUF_WORDS: usize = 64;
    /// ChaCha12 = 6 double rounds.
    const DOUBLE_ROUNDS: usize = 6;

    /// A seeded, deterministic generator — ChaCha12, bit-compatible
    /// with `rand 0.8`'s `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        key: [u32; 8],
        /// Block counter of the next refill (stream id fixed at 0).
        counter: u64,
        buf: [u32; BUF_WORDS],
        /// Next unread word in `buf`; `BUF_WORDS` means "empty".
        index: usize,
    }

    /// One ChaCha block: constants ‖ key ‖ 64-bit counter ‖ 64-bit
    /// stream id (always 0 here), `double_rounds` double rounds, then
    /// the wordwise add-back of the input state.
    pub(crate) fn chacha_block(key: &[u32; 8], counter: u64, double_rounds: usize) -> [u32; 16] {
        let mut s = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        macro_rules! qr {
            ($a:expr, $b:expr, $c:expr, $d:expr) => {
                s[$a] = s[$a].wrapping_add(s[$b]);
                s[$d] = (s[$d] ^ s[$a]).rotate_left(16);
                s[$c] = s[$c].wrapping_add(s[$d]);
                s[$b] = (s[$b] ^ s[$c]).rotate_left(12);
                s[$a] = s[$a].wrapping_add(s[$b]);
                s[$d] = (s[$d] ^ s[$a]).rotate_left(8);
                s[$c] = s[$c].wrapping_add(s[$d]);
                s[$b] = (s[$b] ^ s[$c]).rotate_left(7);
            };
        }
        for _ in 0..double_rounds {
            qr!(0, 4, 8, 12);
            qr!(1, 5, 9, 13);
            qr!(2, 6, 10, 14);
            qr!(3, 7, 11, 15);
            qr!(0, 5, 10, 15);
            qr!(1, 6, 11, 12);
            qr!(2, 7, 8, 13);
            qr!(3, 4, 9, 14);
        }
        for (w, i) in s.iter_mut().zip(input) {
            *w = w.wrapping_add(i);
        }
        s
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // rand_core 0.6's default `seed_from_u64`: PCG32 steps fill
            // the 32-byte seed with little-endian u32s — which are the
            // ChaCha key words verbatim.
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            let mut state = seed;
            let mut key = [0u32; 8];
            for word in &mut key {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                *word = xorshifted.rotate_right(rot);
            }
            Self {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }

        fn refill(&mut self) {
            for block in 0..4 {
                let words = chacha_block(&self.key, self.counter + block as u64, DOUBLE_ROUNDS);
                self.buf[block * 16..(block + 1) * 16].copy_from_slice(&words);
            }
            self.counter += 4;
        }

        pub(crate) fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill();
                self.index = 0;
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            // `rand_core::block::BlockRng::next_u64`, including the rule
            // for a draw that straddles a buffer refill.
            if self.index < BUF_WORDS - 1 {
                let v =
                    (u64::from(self.buf[self.index + 1]) << 32) | u64::from(self.buf[self.index]);
                self.index += 2;
                v
            } else if self.index >= BUF_WORDS {
                self.refill();
                self.index = 2;
                (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
            } else {
                let lo = u64::from(self.buf[BUF_WORDS - 1]);
                self.refill();
                self.index = 1;
                (u64::from(self.buf[0]) << 32) | lo
            }
        }
    }
}

/// Seeding interface (stub: only [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`; `high > low`.
    fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`; `high >= low`.
    fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

// `uniform_int_impl!` from rand 0.8.5: widening-multiply rejection
// sampling. 8/16/32-bit types sample a `u32` per attempt; 64-bit types
// a `u64`. The `zone` is the largest multiple of `range` minus one (for
// 8/16-bit types computed exactly; for the wider types via the
// `leading_zeros` shortcut, exactly as upstream).
macro_rules! impl_sample_uniform_int {
    ($($t:ty, $unsigned:ty, $u_large:ty, $next:ident);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                Self::sample_inclusive(low, high - 1, rng)
            }

            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // Span covers the whole type: every draw is valid.
                    return rng.$next() as $t;
                }
                let zone = if (<$unsigned>::MAX as u64) <= (u16::MAX as u64) {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = rng.$next() as $u_large;
                    let m = (v as u128) * (range as u128);
                    let (hi, lo) = ((m >> <$u_large>::BITS) as $u_large, m as $u_large);
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8, u8, u32, next_u32;
    u16, u16, u32, next_u32;
    u32, u32, u32, next_u32;
    i8, u8, u32, next_u32;
    i16, u16, u32, next_u32;
    i32, u32, u32, next_u32;
    u64, u64, u64, next_u64;
    i64, u64, u64, next_u64;
    usize, usize, u64, next_u64;
    isize, usize, u64, next_u64;
);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // `UniformFloat::<f64>::sample_single`: 52 mantissa bits mapped
        // to [1, 2), shifted to [0, 1), scaled. The retry only triggers
        // when rounding lands exactly on `high`.
        assert!(low < high, "gen_range: empty range");
        let scale = high - low;
        loop {
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
        }
    }

    fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let scale = high - low;
        let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
        (value1_2 - 1.0) * scale + low
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing generator interface (stub: `gen_range` / `gen_bool`).
pub trait Rng {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // `Bernoulli`: p == 1.0 short-circuits without a draw; otherwise
        // one u64 draw against (p * 2^64) as u64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        if p == 1.0 {
            return true;
        }
        self.next_u64() < (p * SCALE) as u64
    }
}

impl Rng for rngs::StdRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn chacha20_rfc_keystream_vector() {
        // djb/RFC 7539-style all-zero key+nonce, counter 0, 10 double
        // rounds (ChaCha20). First keystream bytes 76 b8 e0 ad ... as
        // little-endian words. Validates the quarter-round network and
        // the add-back; ChaCha12 only changes the round count.
        let words = crate::rngs::chacha_block(&[0; 8], 0, 10);
        assert_eq!(
            &words[..8],
            &[
                0xade0_b876,
                0x903d_f1a0,
                0xe56a_5d40,
                0x28bd_8653,
                0xb819_d2bd,
                0x1aed_8da0,
                0xccef_36a8,
                0xc70d_778b,
            ]
        );
    }

    #[test]
    fn block_buffer_straddles_like_rand_core() {
        // 63 u32 draws leave one word in the buffer; the next u64 must
        // take its low half from word 63 and its high half from the
        // first word of the next 4-block refill.
        let mut rng = StdRng::seed_from_u64(42);
        let mut probe = StdRng::seed_from_u64(42);
        let words: Vec<u32> = (0..128).map(|_| probe.next_u32()).collect();
        for w in words.iter().take(63) {
            assert_eq!(rng.next_u32(), *w);
        }
        let straddled = rng.next_u64();
        assert_eq!(straddled as u32, words[63]);
        assert_eq!((straddled >> 32) as u32, words[64]);
        assert_eq!(rng.next_u32(), words[65]);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let s: u16 = rng.gen_range(0..16);
            assert!(s < 16);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_type_span_ranges_draw_directly() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: u8 = rng.gen_range(0..=u8::MAX);
    }
}
