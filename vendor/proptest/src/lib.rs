//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this repository cannot reach crates.io, so
//! this stub implements exactly the surface the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! range and `any::<T>()` strategies, `prop::collection::{vec,
//! btree_set}`, `prop::option::of`, tuple strategies, and the
//! `prop_map`/`prop_flat_map` combinators.
//!
//! Differences from upstream: generation is plain Monte Carlo off a
//! deterministic per-test seed (no shrinking, no persisted failure
//! files), and `prop_assert!` panics instead of returning a
//! `TestCaseError`. For the assertions in this workspace those behave
//! identically (a failing case fails the test with the offending
//! values printed by the panic message).

#![forbid(unsafe_code)]

/// Test-runner configuration (stub: only the case count).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// The deterministic generator driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator from a test name, deterministically.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and builds.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
            Self { state: h }
        }

        /// The next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates from `self`, then from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + i128::from(rng.below(span))) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + i128::from(rng.below(span))) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

    // `u64` spans can exceed `u64::MAX - 1`; widen through u128.
    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = u128::from(self.end - self.start);
            self.start + ((u128::from(rng.next_u64()) * span) >> 64) as u64
        }
    }

    impl Strategy for RangeInclusive<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            let span = u128::from(hi - lo) + 1;
            lo + ((u128::from(rng.next_u64()) * span) >> 64) as u64
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Types with a canonical whole-domain strategy; see [`any`].
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy generating any value of `T`; see [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T` (`any::<u64>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::…`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo + 1) as u64;
            self.lo + rng.below(span) as usize
        }
    }

    /// Strategy producing `Vec`s; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeSet`s; see [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Bounded retries: small domains may not have `want` distinct
            // values; upstream proptest rejects, we settle for fewer.
            for _ in 0..want.saturating_mul(16).max(16) {
                if set.len() >= want {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// `BTreeSet`s of roughly `size` distinct elements from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing `Option`s; see [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `None` or `Some(value)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a property-test file needs, including `prop::…` paths.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property, reporting both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(x in strategy, …) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut prop_rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..config.cases {
                let _ = __case;
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);
                )*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in any::<u64>(), b in any::<bool>()) {
            prop_assert!((3..17).contains(&n));
            let _ = (x, b);
        }

        #[test]
        fn vec_lengths_obey_size(v in prop::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn flat_map_chains(pair in (1usize..4).prop_flat_map(|n| {
            prop::collection::vec(0usize..10, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn options_and_sets(
            o in prop::option::of(0usize..5),
            s in prop::collection::btree_set(0usize..100, 0..=4),
        ) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
            prop_assert!(s.len() <= 4);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
