//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment for this repository cannot reach crates.io, so
//! this stub provides the small benchmarking surface the workspace's
//! `benches/` use: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is simple wall-clock timing over a fixed batch — good
//! enough for coarse comparisons, with none of upstream's statistics,
//! warm-up tuning, or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Label for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }

    /// An id with an explicit function name and parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the closure under measurement; see [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine`, repeating it enough to smooth clock jitter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches before measuring.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<I: Display, R: FnMut(&mut Bencher)>(&mut self, id: I, mut routine: R) {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed_ns: 0,
        };
        routine(&mut bencher);
        self.criterion
            .report(&format!("{}/{}", self.name, id), &bencher);
    }

    /// Benchmarks `routine` with an input value threaded through.
    pub fn bench_with_input<I: Display, T, R: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut routine: R,
    ) {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed_ns: 0,
        };
        routine(&mut bencher, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id), &bencher);
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    /// Benchmarks `routine` as a stand-alone (group-less) benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: R) {
        let mut bencher = Bencher {
            iterations: 50,
            elapsed_ns: 0,
        };
        routine(&mut bencher);
        self.report(name, &bencher);
    }

    fn report(&mut self, label: &str, bencher: &Bencher) {
        let per_iter = bencher.elapsed_ns / u128::from(bencher.iterations.max(1));
        println!("bench {label:<56} {:>12} ns/iter", per_iter);
    }
}

/// Re-export so `use std::hint::black_box` and criterion-style imports
/// both work.
pub use std::hint::black_box;

/// Declares a benchmark group runner, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(5);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
            });
        }
        group.bench_function("fixed", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_all_benchmarks() {
        benches();
    }

    #[test]
    fn benchmark_id_renders_parameter() {
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
