//! Long-running statistical stress tests, `#[ignore]`d by default.
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! The default suite keeps per-test wall-clock small; these runs push the
//! seed counts and sizes far enough to expose rare-event bugs (decode
//! miscorrections, rewind livelocks, agreement breaks) with real
//! statistical power.

use noisy_beeps::channel::{run_noiseless, NoiseModel};
use noisy_beeps::core::{
    HierarchicalSimulator, OneToZeroSimulator, RewindSimulator, SimulatorConfig,
};
use noisy_beeps::protocols::{InputSet, LeaderElection, Membership};
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
#[ignore = "minutes-long statistical sweep"]
fn rewind_scheme_hundreds_of_seeds() {
    let n = 12;
    let p = InputSet::new(n);
    let model = NoiseModel::Correlated { epsilon: 0.15 };
    let sim = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
    let mut rng = StdRng::seed_from_u64(0x57E55);
    let trials = 300u64;
    let mut bad = 0u32;
    for seed in 0..trials {
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        let truth = run_noiseless(&p, &inputs);
        match sim.simulate(&inputs, model, seed) {
            Ok(out) if out.transcript() == truth.transcript() => {}
            _ => bad += 1,
        }
    }
    assert!(bad <= 3, "{bad}/{trials} failures at eps=0.15");
}

#[test]
#[ignore = "minutes-long statistical sweep"]
fn hierarchical_scheme_hundreds_of_seeds() {
    let n = 10;
    let p = LeaderElection::new(n, 12);
    let model = NoiseModel::Correlated { epsilon: 0.12 };
    let sim = HierarchicalSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
    let mut rng = StdRng::seed_from_u64(0x57E56);
    let trials = 200u64;
    let mut bad = 0u32;
    for seed in 0..trials {
        let ids: Vec<usize> = (0..n).map(|_| rng.gen_range(0..4096)).collect();
        let truth = run_noiseless(&p, &ids);
        match sim.simulate(&ids, model, seed) {
            Ok(out) if out.outputs() == truth.outputs() => {}
            _ => bad += 1,
        }
    }
    assert!(bad <= 2, "{bad}/{trials} failures");
}

#[test]
#[ignore = "minutes-long statistical sweep"]
fn one_to_zero_scheme_long_protocols() {
    // T = 2000-round protocols at the paper's eps = 1/3: the hierarchy of
    // checkpoints must hold the error probability down across hundreds of
    // erasures per run.
    let n = 5;
    let p = noisy_beeps::protocols::MultiOr::new(n, 2000);
    let model = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
    let sim = OneToZeroSimulator::new(&p, 2, 32.0);
    let mut rng = StdRng::seed_from_u64(0x57E57);
    let trials = 40u64;
    let mut bad = 0u32;
    for seed in 0..trials {
        let inputs: Vec<Vec<bool>> = (0..n)
            .map(|_| (0..2000).map(|_| rng.gen_bool(0.1)).collect())
            .collect();
        let truth = run_noiseless(&p, &inputs);
        match sim.simulate(&inputs, model, seed) {
            Ok(out) if out.transcript() == truth.transcript() => {}
            _ => bad += 1,
        }
    }
    assert!(bad <= 1, "{bad}/{trials} failures on long protocols");
}

#[test]
#[ignore = "minutes-long statistical sweep"]
fn independent_noise_agreement_at_scale() {
    let n = 48;
    let p = InputSet::new(n);
    let model = NoiseModel::Independent { epsilon: 0.1 };
    let sim = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
    let mut rng = StdRng::seed_from_u64(0x57E58);
    let trials = 30u64;
    let mut disagreements = 0u32;
    let mut bad = 0u32;
    for seed in 0..trials {
        let inputs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2 * n)).collect();
        let truth = run_noiseless(&p, &inputs);
        match sim.simulate(&inputs, model, seed) {
            Ok(out) => {
                if !out.stats().agreement {
                    disagreements += 1;
                }
                if out.transcript() != truth.transcript() {
                    bad += 1;
                }
            }
            Err(_) => bad += 1,
        }
    }
    assert!(bad <= 2, "{bad}/{trials} wrong transcripts");
    assert!(
        disagreements <= 3,
        "{disagreements}/{trials} agreement breaks"
    );
}

#[test]
#[ignore = "minutes-long statistical sweep"]
fn deep_membership_under_paper_noise() {
    // The heaviest adaptive workload at the paper's exposition rate.
    let p = Membership::new(6, 32);
    let model = NoiseModel::Correlated { epsilon: 1.0 / 3.0 };
    let mut config = SimulatorConfig::builder(6).model(model).build();
    config.budget_factor = 16.0;
    let sim = RewindSimulator::new(&p, config);
    let inputs = [Some(3), Some(17), None, Some(30), None, Some(8)];
    let truth = run_noiseless(&p, &inputs);
    let trials = 25u64;
    let mut bad = 0u32;
    for seed in 0..trials {
        match sim.simulate(&inputs, model, seed) {
            Ok(out) if out.outputs() == truth.outputs() => {}
            _ => bad += 1,
        }
    }
    assert!(bad <= 2, "{bad}/{trials} failures at eps=1/3");
}
