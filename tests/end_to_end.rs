//! End-to-end matrix: every library protocol, simulated by the paper's
//! schemes, over every applicable noise regime, must reproduce the
//! noiseless execution.

use noisy_beeps::channel::{run_noiseless, NoiseModel, Protocol};
use noisy_beeps::core::{
    OneToZeroSimulator, RepetitionSimulator, RewindSimulator, SimulatorConfig,
};
use noisy_beeps::protocols::{Census, FireflySync, InputSet, LeaderElection, Membership, MultiOr};
use rand::{rngs::StdRng, SeedableRng};

/// Runs a protocol through both general-purpose simulators over `model`
/// and checks the simulated transcript matches the noiseless one in at
/// least `min_good` out of `trials` seeds each.
fn check_schemes<P: Protocol>(
    protocol: &P,
    inputs: &[P::Input],
    model: NoiseModel,
    trials: u64,
    min_good: usize,
) {
    let truth = run_noiseless(protocol, inputs);
    let config = SimulatorConfig::builder(protocol.num_parties())
        .model(model)
        .build();

    let rep = RepetitionSimulator::new(protocol, config.clone());
    let mut good = 0;
    for seed in 0..trials {
        if let Ok(out) = rep.simulate(inputs, model, seed) {
            if out.transcript() == truth.transcript() {
                good += 1;
            }
        }
    }
    assert!(
        good >= min_good,
        "repetition: only {good}/{trials} exact over {model}"
    );

    let rewind = RewindSimulator::new(protocol, config);
    let mut good = 0;
    for seed in 0..trials {
        if let Ok(out) = rewind.simulate(inputs, model, seed) {
            if out.transcript() == truth.transcript() {
                good += 1;
            }
        }
    }
    assert!(
        good >= min_good,
        "rewind: only {good}/{trials} exact over {model}"
    );
}

#[test]
fn input_set_over_correlated_noise() {
    let p = InputSet::new(6);
    check_schemes(
        &p,
        &[0, 3, 7, 7, 10, 2],
        NoiseModel::Correlated { epsilon: 0.15 },
        8,
        7,
    );
}

#[test]
fn input_set_over_one_sided_up_noise() {
    let p = InputSet::new(6);
    check_schemes(
        &p,
        &[1, 1, 4, 9, 11, 0],
        NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 },
        8,
        7,
    );
}

#[test]
fn leader_election_over_correlated_noise() {
    let p = LeaderElection::new(5, 8);
    check_schemes(
        &p,
        &[17, 230, 101, 5, 64],
        NoiseModel::Correlated { epsilon: 0.1 },
        6,
        5,
    );
}

#[test]
fn membership_over_independent_noise() {
    let p = Membership::new(4, 8);
    check_schemes(
        &p,
        &[Some(1), Some(6), None, Some(3)],
        NoiseModel::Independent { epsilon: 0.08 },
        6,
        5,
    );
}

#[test]
fn multi_or_over_one_sided_down_noise() {
    let p = MultiOr::new(4, 12);
    let inputs: Vec<Vec<bool>> = (0..4)
        .map(|i| (0..12).map(|m| (m + i) % 4 == 0).collect())
        .collect();
    check_schemes(
        &p,
        &inputs,
        NoiseModel::OneSidedOneToZero { epsilon: 0.25 },
        6,
        5,
    );
}

#[test]
fn census_tape_roundtrip_over_noise() {
    let n = 12;
    let p = Census::new(n, 10);
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let inputs: Vec<Vec<bool>> = (0..n).map(|_| p.sample_input(&mut rng)).collect();
    check_schemes(&p, &inputs, NoiseModel::Correlated { epsilon: 0.1 }, 5, 4);
}

#[test]
fn firefly_over_correlated_noise() {
    let p = FireflySync::new(6, 9);
    check_schemes(
        &p,
        &[2, 8, 5, 0, 7, 4],
        NoiseModel::Correlated { epsilon: 0.12 },
        6,
        5,
    );
}

#[test]
fn one_to_zero_scheme_across_protocols() {
    let model = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };

    let p = InputSet::new(10);
    let inputs: Vec<usize> = (0..10).map(|i| (7 * i) % 20).collect();
    let truth = run_noiseless(&p, &inputs);
    let sim = OneToZeroSimulator::new(&p, 2, 24.0);
    let mut good = 0;
    for seed in 0..10 {
        if let Ok(out) = sim.simulate(&inputs, model, seed) {
            if out.transcript() == truth.transcript() {
                good += 1;
            }
        }
    }
    assert!(good >= 9, "InputSet over 1->0: {good}/10");

    let p = Membership::new(3, 16);
    let inputs = [Some(9), Some(2), None];
    let truth = run_noiseless(&p, &inputs);
    let sim = OneToZeroSimulator::new(&p, 2, 24.0);
    let mut good = 0;
    for seed in 0..10 {
        if let Ok(out) = sim.simulate(&inputs, model, seed) {
            if out.outputs() == truth.outputs() {
                good += 1;
            }
        }
    }
    assert!(good >= 9, "Membership over 1->0: {good}/10");
}

#[test]
fn overhead_ordering_matches_theory() {
    // At the same eps, the constant-overhead 1->0 scheme must be cheaper
    // than the rewind scheme, which must be cheaper than repetition made
    // reliable to the same target... (repetition is cheap per round but
    // the comparison the paper cares about is rewind vs the trivial
    // protocol). Check the robust ordering: 1->0 constant < rewind.
    let n = 16;
    let p = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (3 * i) % (2 * n)).collect();

    let down = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
    let z = OneToZeroSimulator::new(&p, 2, 24.0)
        .simulate(&inputs, down, 1)
        .unwrap();

    let up = NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 };
    let r = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(up).build())
        .simulate(&inputs, up, 1)
        .unwrap();

    assert!(
        z.stats().overhead() < r.stats().overhead(),
        "1->0 ({:.1}x) should beat 0->1 ({:.1}x)",
        z.stats().overhead(),
        r.stats().overhead()
    );
}
