//! Property-based tests: the simulation schemes must reproduce the
//! noiseless execution of *arbitrary* (adaptive, randomly generated)
//! protocols — not just the curated library ones.

use noisy_beeps::channel::{run_noiseless, NoiseModel, Protocol};
use noisy_beeps::core::{RepetitionSimulator, RewindSimulator, SimulatorConfig};
use proptest::prelude::*;

/// A pseudorandom adaptive protocol: each party's beep decision is a hash
/// of (its index, its input, the transcript so far), so the protocol is
/// deterministic yet maximally transcript-dependent.
#[derive(Debug, Clone)]
struct HashProtocol {
    n: usize,
    t: usize,
    salt: u64,
    /// Probability (per mille) that any given (party, input, transcript)
    /// combination beeps — controls transcript density.
    density: u64,
}

impl HashProtocol {
    fn mix(&self, party: usize, input: u64, transcript: &[bool]) -> u64 {
        // FNV-1a over the decision context.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.salt;
        let mut absorb = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for b in party.to_le_bytes() {
            absorb(b);
        }
        for b in input.to_le_bytes() {
            absorb(b);
        }
        absorb(transcript.len() as u8);
        for (i, &bit) in transcript.iter().enumerate() {
            absorb((i as u8) ^ u8::from(bit).wrapping_mul(0x5A));
        }
        h
    }
}

impl Protocol for HashProtocol {
    type Input = u64;
    type Output = Vec<bool>;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        self.t
    }

    fn beep(&self, party: usize, input: &u64, transcript: &[bool]) -> bool {
        self.mix(party, *input, transcript) % 1000 < self.density
    }

    fn output(&self, _party: usize, _input: &u64, transcript: &[bool]) -> Vec<bool> {
        transcript.to_vec()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With zero noise and one repetition, simulation is a pure replay.
    #[test]
    fn noiseless_simulation_replays_any_protocol(
        n in 1usize..6,
        t in 1usize..24,
        salt in any::<u64>(),
        density in 50u64..800,
        inputs_seed in any::<u64>(),
    ) {
        let p = HashProtocol { n, t, salt, density };
        let inputs: Vec<u64> = (0..n as u64).map(|i| inputs_seed.wrapping_add(i * 7919)).collect();
        let truth = run_noiseless(&p, &inputs);

        let mut config = SimulatorConfig::builder(n).model(NoiseModel::Noiseless).build();
        config.repetitions = 1;
        let sim = RepetitionSimulator::new(&p, config.clone());
        let out = sim.simulate(&inputs, NoiseModel::Noiseless, 0).unwrap();
        prop_assert_eq!(out.transcript(), truth.transcript());
        prop_assert_eq!(out.stats().channel_rounds, t);

        let rewind = RewindSimulator::new(&p, config);
        let out = rewind.simulate(&inputs, NoiseModel::Noiseless, 0).unwrap();
        prop_assert_eq!(out.transcript(), truth.transcript());
        prop_assert_eq!(out.stats().rewinds, 0);
    }

    /// The rewind scheme reproduces arbitrary adaptive protocols over
    /// mild correlated noise.
    #[test]
    fn rewind_simulates_arbitrary_protocols_under_noise(
        n in 2usize..5,
        t in 2usize..16,
        salt in any::<u64>(),
        density in 100u64..600,
        seed in any::<u64>(),
    ) {
        let p = HashProtocol { n, t, salt, density };
        let inputs: Vec<u64> = (0..n as u64).map(|i| salt.wrapping_mul(31).wrapping_add(i)).collect();
        let truth = run_noiseless(&p, &inputs);

        let model = NoiseModel::Correlated { epsilon: 0.05 };
        let mut config = SimulatorConfig::builder(n).model(model).build();
        config.budget_factor = 16.0;
        let sim = RewindSimulator::new(&p, config);
        // A single seed may legitimately fail (the scheme is randomized);
        // require success within a few tries to keep flakiness ~0 while
        // still catching systematic bugs.
        let mut ok = false;
        for attempt in 0..4u64 {
            if let Ok(out) = sim.simulate(&inputs, model, seed.wrapping_add(attempt)) {
                if out.transcript() == truth.transcript() {
                    ok = true;
                    break;
                }
            }
        }
        prop_assert!(ok, "no exact simulation in 4 attempts");
    }

    /// Simulated transcripts always have the protocol's length and all
    /// parties agree under shared noise.
    #[test]
    fn transcript_shape_invariants(
        n in 1usize..5,
        t in 1usize..12,
        salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let p = HashProtocol { n, t, salt, density: 300 };
        let inputs: Vec<u64> = (0..n as u64).collect();
        let model = NoiseModel::OneSidedZeroToOne { epsilon: 0.2 };
        let config = SimulatorConfig::builder(n).model(model).build();
        let sim = RewindSimulator::new(&p, config);
        if let Ok(out) = sim.simulate(&inputs, model, seed) {
            prop_assert_eq!(out.transcript().len(), t);
            prop_assert!(out.stats().agreement, "shared noise must preserve agreement");
            prop_assert!(out.stats().channel_rounds >= t);
        }
    }
}
