//! Subsection A.1.2: the two-sided `ε = 1/4` channel can be built from the
//! one-sided `ε = 1/3` channel plus shared randomness — the reduction that
//! lets Theorem C.1 (one-sided lower bound) imply Theorem 1.1.

use noisy_beeps::channel::{
    run_noiseless, run_protocol, run_protocol_over, Channel, NoiseModel, ReducedTwoSidedChannel,
    StochasticChannel,
};
use noisy_beeps::core::{RewindSimulator, SimulatorConfig};
use noisy_beeps::info::entropy::binary_entropy;
use noisy_beeps::protocols::InputSet;

#[test]
fn reduced_channel_matches_native_quarter_noise_statistics() {
    // Flip rates in both directions must match eps = 1/4 closely.
    let trials = 100_000u32;
    for &true_or in &[false, true] {
        let mut reduced = ReducedTwoSidedChannel::new(2, 11);
        let mut native = StochasticChannel::new(2, NoiseModel::Correlated { epsilon: 0.25 }, 12);
        let mut flips_reduced = 0u32;
        let mut flips_native = 0u32;
        for _ in 0..trials {
            if reduced.transmit(true_or).shared() != Some(true_or) {
                flips_reduced += 1;
            }
            if native.transmit(true_or).shared() != Some(true_or) {
                flips_native += 1;
            }
        }
        let rr = f64::from(flips_reduced) / f64::from(trials);
        let rn = f64::from(flips_native) / f64::from(trials);
        assert!(
            (rr - 0.25).abs() < 0.005,
            "reduced rate {rr} for OR={true_or}"
        );
        assert!((rr - rn).abs() < 0.01, "reduced {rr} vs native {rn}");
    }
}

#[test]
fn protocols_behave_identically_over_both_channels() {
    // Same protocol, same inputs: error *rates* over many seeds must
    // match between the reduced channel and a native eps = 1/4 channel.
    let n = 8;
    let p = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (3 * i) % (2 * n)).collect();
    let expect = run_noiseless(&p, &inputs).outputs()[0].clone();

    let trials = 300u64;
    let mut wrong_reduced = 0;
    let mut wrong_native = 0;
    for seed in 0..trials {
        let mut ch = ReducedTwoSidedChannel::new(n, seed);
        let out = run_protocol_over(&p, &inputs, &mut ch);
        if out.outputs()[0] != expect {
            wrong_reduced += 1;
        }
        let out = run_protocol(&p, &inputs, NoiseModel::Correlated { epsilon: 0.25 }, seed);
        if out.outputs()[0] != expect {
            wrong_native += 1;
        }
    }
    let fr = wrong_reduced as f64 / trials as f64;
    let fn_ = wrong_native as f64 / trials as f64;
    // Both should fail almost always at this length, and at similar rates.
    assert!(
        (fr - fn_).abs() < 0.1,
        "failure rates diverge: {fr} vs {fn_}"
    );
}

#[test]
fn simulation_succeeds_over_the_reduced_channel() {
    // The Theorem 1.2 scheme, configured for eps = 1/4 two-sided noise,
    // must work over the *composite* channel just as over a native one —
    // the operational content of the reduction.
    let n = 6;
    let p = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (5 * i + 1) % (2 * n)).collect();
    let truth = run_noiseless(&p, &inputs);
    let model = NoiseModel::Correlated { epsilon: 0.25 };
    let sim = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());

    let mut good = 0;
    let trials = 6;
    for seed in 0..trials {
        let mut ch = ReducedTwoSidedChannel::new(n, 7_000 + seed);
        if let Ok(out) = sim.simulate_over(&inputs, model, &mut ch) {
            if out.transcript() == truth.transcript() {
                good += 1;
            }
        }
    }
    assert!(
        good >= trials - 1,
        "only {good}/{trials} exact over reduced channel"
    );
}

#[test]
fn reduction_constants_match_the_paper() {
    // 1/3 one-sided + 1/4 downgrade = 1/4 effective, per A.1.2's
    // arithmetic: P(1 stays 1) = 3/4 and P(0 becomes 1) = 1/3 * 3/4 = 1/4.
    assert_eq!(ReducedTwoSidedChannel::ONE_SIDED_EPS, 1.0 / 3.0);
    assert_eq!(ReducedTwoSidedChannel::DOWNGRADE_PROB, 1.0 / 4.0);
    assert_eq!(ReducedTwoSidedChannel::EFFECTIVE_EPS, 1.0 / 4.0);
    let eff =
        ReducedTwoSidedChannel::ONE_SIDED_EPS * (1.0 - ReducedTwoSidedChannel::DOWNGRADE_PROB);
    assert!((eff - ReducedTwoSidedChannel::EFFECTIVE_EPS).abs() < 1e-12);
    // Sanity: the effective channel is noisier (in entropy) than either
    // component alone at its own rate... h(1/4) < h(1/3), just check h is
    // evaluated consistently.
    assert!(binary_entropy(0.25) < binary_entropy(1.0 / 3.0));
}

#[test]
fn channel_trait_is_object_safe_across_implementations() {
    // The simulators accept any `&mut dyn Channel`; exercise all three
    // implementations through the trait object path.
    let p = InputSet::new(3);
    let inputs = [0usize, 2, 4];
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let sim = RewindSimulator::new(&p, SimulatorConfig::builder(3).model(model).build());

    let mut channels: Vec<Box<dyn Channel>> = vec![
        Box::new(StochasticChannel::new(3, model, 1)),
        Box::new(ReducedTwoSidedChannel::new(3, 2)),
    ];
    for ch in channels.iter_mut() {
        let out = sim.simulate_over(&inputs, model, ch.as_mut());
        assert!(out.is_ok(), "simulation over {:?} failed", ch.rounds());
    }
}
