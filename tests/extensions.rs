//! Integration tests for the extension systems: the hierarchical (D.2)
//! simulator, protocol combinators, the pointer-chasing workload, the
//! correcting adversary, and the multiplication-channel view.

use noisy_beeps::channel::{
    run_noiseless, run_protocol_over, BurstNoiseChannel, Channel, CorrectingAdversaryChannel,
    CorrectionPolicy, NoiseModel, Protocol, ScriptedChannel,
};
use noisy_beeps::core::{HierarchicalSimulator, RewindSimulator, SimulatorConfig};
use noisy_beeps::protocols::combinators::{Chained, ParallelRepeat};
use noisy_beeps::protocols::{Broadcast, InputSet, PointerChase, RollCall};

#[test]
fn hierarchical_simulator_over_scripted_adversary() {
    // A scripted burst inside the first chunk: the level-0 check must
    // truncate it and the end result must still be exact.
    let n = 4;
    let p = InputSet::new(n);
    let inputs = [1usize, 3, 4, 6];
    let truth = run_noiseless(&p, &inputs);
    let model = NoiseModel::Correlated { epsilon: 0.2 };
    let config = SimulatorConfig::builder(n).model(model).build();
    let r = config.repetitions;
    let sim = HierarchicalSimulator::new(&p, config);
    let mut flips = vec![false; r];
    for f in flips.iter_mut() {
        *f = true;
    }
    let mut ch = ScriptedChannel::new(n, flips);
    let out = sim.simulate_over(&inputs, model, &mut ch).unwrap();
    assert_eq!(out.transcript(), truth.transcript());
    assert!(out.stats().rewinds >= 1, "{:?}", out.stats());
}

#[test]
fn pointer_chase_protected_by_both_theorem_1_2_schemes() {
    // The most sequential workload: one corrupted phase derails the
    // noiseless protocol, but both simulators keep it exact.
    let p = PointerChase::new(3, 8, 6);
    let tables = vec![
        vec![4, 2, 7, 1, 0, 3, 6, 5],
        vec![1, 5, 0, 2, 6, 7, 3, 4],
        vec![3, 0, 1, 6, 2, 4, 5, 7],
    ];
    let truth = run_noiseless(&p, &tables);
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let config = SimulatorConfig::builder(3).model(model).build();

    let rewind = RewindSimulator::new(&p, config.clone());
    let hier = HierarchicalSimulator::new(&p, config);
    let mut rewind_good = 0;
    let mut hier_good = 0;
    for seed in 0..6 {
        if let Ok(out) = rewind.simulate(&tables, model, seed) {
            rewind_good += u32::from(out.outputs() == truth.outputs());
        }
        if let Ok(out) = hier.simulate(&tables, model, seed) {
            hier_good += u32::from(out.outputs() == truth.outputs());
        }
    }
    assert!(rewind_good >= 5, "rewind: {rewind_good}/6");
    assert!(hier_good >= 5, "hierarchical: {hier_good}/6");
}

#[test]
fn chained_pipeline_simulates_exactly() {
    // RollCall feeding InputSet, protected end to end.
    let p = Chained::new(RollCall::new(4), InputSet::new(4), |_, count| count % 8);
    let inputs = [true, true, false, true];
    let truth = run_noiseless(&p, &inputs);
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let sim = RewindSimulator::new(&p, SimulatorConfig::builder(4).model(model).build());
    let mut good = 0;
    for seed in 0..6 {
        if let Ok(out) = sim.simulate(&inputs, model, seed) {
            good += u32::from(out.outputs() == truth.outputs());
        }
    }
    assert!(good >= 5, "{good}/6 pipelines exact");
}

#[test]
fn parallel_repeat_simulates_exactly() {
    let p = ParallelRepeat::new(Broadcast::new(3, 1, 6), 3);
    let inputs = [0usize, 0x2A, 0];
    let truth = run_noiseless(&p, &inputs);
    let model = NoiseModel::OneSidedZeroToOne { epsilon: 0.25 };
    let sim = RewindSimulator::new(&p, SimulatorConfig::builder(3).model(model).build());
    let out = sim.simulate(&inputs, model, 7).unwrap();
    assert_eq!(out.outputs(), truth.outputs());
    assert_eq!(out.outputs()[0], vec![0x2A, 0x2A, 0x2A]);
}

#[test]
fn correcting_adversary_matches_one_sided_statistics_through_protocols() {
    // Running the naked InputSet over (two-sided + DownFlips adversary)
    // must behave like the one-sided 0->1 channel: phantom elements only.
    let n = 8;
    let p = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (2 * i) % (2 * n)).collect();
    let expect = run_noiseless(&p, &inputs).outputs()[0].clone();
    for seed in 0..20 {
        let mut ch =
            CorrectingAdversaryChannel::new(n, 1.0 / 3.0, CorrectionPolicy::DownFlips, seed);
        let out = run_protocol_over(&p, &inputs, &mut ch);
        // Every true element must survive (beeps are never erased)...
        for x in &expect {
            assert!(
                out.outputs()[0].contains(x),
                "adversary channel erased a beep"
            );
        }
        // ...and corrections were only ever applied to down-flips.
        assert!(ch.rounds() == p.length());
    }
}

#[test]
fn simulators_work_over_the_adversary_channel() {
    // Parameters sized for the one-sided model must survive the
    // adversarially-corrected two-sided channel (they are the same
    // channel, which is the A.1.2 point).
    let n = 6;
    let p = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (5 * i) % (2 * n)).collect();
    let truth = run_noiseless(&p, &inputs);
    let model = NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 };
    let sim = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
    let mut good = 0;
    for seed in 0..6 {
        let mut ch =
            CorrectingAdversaryChannel::new(n, 1.0 / 3.0, CorrectionPolicy::DownFlips, 900 + seed);
        if let Ok(out) = sim.simulate_over(&inputs, model, &mut ch) {
            good += u32::from(out.transcript() == truth.transcript());
        }
    }
    assert!(good >= 5, "{good}/6 exact over the adversary channel");
}

#[test]
fn rewind_scheme_survives_burst_noise() {
    // The paper assumes i.i.d. noise; the rewind discipline also handles
    // Markov-modulated bursts (a burst ruins a chunk, which is redone) —
    // configure for the burst channel's *stationary* rate and simulate
    // over the bursty channel itself.
    let n = 6;
    let p = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (7 * i) % (2 * n)).collect();
    let truth = run_noiseless(&p, &inputs);
    let probe = BurstNoiseChannel::new(n, 0.02, 0.4, 0.05, 0.15, 0);
    let stationary = probe.stationary_flip_rate();
    let model = NoiseModel::Correlated {
        epsilon: stationary.max(0.05),
    };
    let mut config = SimulatorConfig::builder(n).model(model).build();
    config.budget_factor = 24.0;
    let sim = RewindSimulator::new(&p, config);
    let mut good = 0;
    let trials = 8;
    for seed in 0..trials {
        let mut ch = BurstNoiseChannel::new(n, 0.02, 0.4, 0.05, 0.15, 40 + seed);
        if let Ok(out) = sim.simulate_over(&inputs, model, &mut ch) {
            good += u32::from(out.transcript() == truth.transcript());
        }
    }
    assert!(
        u64::from(good) >= trials - 2,
        "only {good}/{trials} exact under bursts"
    );
}

#[test]
fn phase_round_accounting_is_complete_and_owners_dominated() {
    // The per-phase counters must sum to the channel rounds, and on
    // InputSet the owners phase must dominate (the E13 observation).
    let n = 8;
    let p = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (3 * i) % (2 * n)).collect();
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let sim = RewindSimulator::new(&p, SimulatorConfig::builder(n).model(model).build());
    let out = sim.simulate(&inputs, model, 5).unwrap();
    let ph = out.stats().phase_rounds;
    assert_eq!(
        ph.chunk + ph.owners + ph.verify,
        out.stats().channel_rounds,
        "phase rounds must partition the run"
    );
    assert!(
        ph.owners_fraction() > 0.5,
        "owners phase should dominate: {ph:?}"
    );
}

#[test]
fn repetition_scheme_attributes_everything_to_chunk_phase() {
    use noisy_beeps::core::RepetitionSimulator;
    let p = InputSet::new(4);
    let model = NoiseModel::Correlated { epsilon: 0.1 };
    let sim = RepetitionSimulator::new(&p, SimulatorConfig::builder(4).model(model).build());
    let out = sim.simulate(&[0, 1, 2, 3], model, 1).unwrap();
    let ph = out.stats().phase_rounds;
    assert_eq!(ph.chunk, out.stats().channel_rounds);
    assert_eq!(ph.owners, 0);
    assert_eq!(ph.verify, 0);
}

#[test]
fn low_energy_code_cuts_owners_phase_energy() {
    // Same scheme, same channel, constant-weight owners code: the run
    // stays exact while the energy drops substantially.
    let n = 8;
    let p = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (5 * i + 1) % (2 * n)).collect();
    let truth = run_noiseless(&p, &inputs);
    let model = NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 };
    let base = SimulatorConfig::builder(n).model(model).build();
    let mut frugal = base.clone();
    // A third of the length keeps decoding reliable (enough distinguishing
    // ones under Z noise) while roughly halving the per-word energy
    // against the random code's len/2 expectation.
    frugal.code_weight = Some((base.code_len / 3).max(4));

    let mut a_energy = 0usize;
    let mut b_energy = 0usize;
    let trials = 6;
    for seed in 0..trials {
        let a = RewindSimulator::new(&p, base.clone())
            .simulate(&inputs, model, seed)
            .unwrap();
        let b = RewindSimulator::new(&p, frugal.clone())
            .simulate(&inputs, model, seed)
            .unwrap();
        assert_eq!(a.transcript(), truth.transcript());
        assert_eq!(b.transcript(), truth.transcript());
        a_energy += a.stats().energy;
        b_energy += b.stats().energy;
    }
    assert!(
        b_energy < a_energy,
        "constant-weight code should cut energy: {b_energy} vs {a_energy}"
    );
}
