//! Failure injection: adversarially scripted noise against the coding
//! schemes. The stochastic tests elsewhere measure average-case behaviour;
//! these place every flip by hand and check the mechanisms (detection,
//! rewind, budget exhaustion) fire exactly as designed.

use noisy_beeps::channel::{run_noiseless, NoiseModel, Protocol, ScriptedChannel};
use noisy_beeps::core::{RewindSimulator, SimulatorConfig};
use noisy_beeps::protocols::{InputSet, MultiOr};

fn config_for(n: usize) -> SimulatorConfig {
    // Thresholds for a two-sided channel; the scripts below corrupt rounds
    // deterministically.
    SimulatorConfig::builder(n)
        .model(NoiseModel::Correlated { epsilon: 0.2 })
        .build()
}

#[test]
fn clean_script_simulates_exactly_with_zero_rewinds() {
    let p = InputSet::new(4);
    let inputs = [0usize, 2, 5, 7];
    let truth = run_noiseless(&p, &inputs);
    let sim = RewindSimulator::new(&p, config_for(4));
    let mut ch = ScriptedChannel::new(4, vec![]); // no flips ever
    let out = sim
        .simulate_over(&inputs, NoiseModel::Correlated { epsilon: 0.2 }, &mut ch)
        .unwrap();
    assert_eq!(out.transcript(), truth.transcript());
    assert_eq!(out.stats().rewinds, 0);
}

#[test]
fn a_corrupted_chunk_is_rewound_and_resimulated() {
    let n = 4;
    let p = InputSet::new(n);
    let inputs = [1usize, 3, 4, 6];
    let truth = run_noiseless(&p, &inputs);
    let config = config_for(n);
    let r = config.repetitions;
    let sim = RewindSimulator::new(&p, config);

    // Corrupt a whole repetition block of the first chunk round: the
    // majority decode flips the simulated bit, verification must flag it,
    // and the chunk must be re-simulated — ending exact anyway.
    let mut flips = vec![false; r];
    for f in flips.iter_mut() {
        *f = true;
    }
    let mut ch = ScriptedChannel::new(n, flips);
    let out = sim
        .simulate_over(&inputs, NoiseModel::Correlated { epsilon: 0.2 }, &mut ch)
        .unwrap();
    assert_eq!(out.transcript(), truth.transcript());
    assert!(
        out.stats().rewinds >= 1,
        "the corrupted chunk must trigger a rewind, got {:?}",
        out.stats()
    );
}

#[test]
fn flipping_a_verification_flag_forces_a_spurious_rewind() {
    let n = 4;
    let p = InputSet::new(n);
    let inputs = [0usize, 1, 2, 3];
    let truth = run_noiseless(&p, &inputs);
    let config = config_for(n);
    let sim = RewindSimulator::new(&p, config.clone());

    // Compute where the first verification phase sits and corrupt ALL its
    // rounds: a unanimous phantom flag.
    let l = config.chunk_len.min(p.length());
    let chunk_rounds = l * config.repetitions;
    let owners_rounds = (config.chunk_len + n) * config.code_len;
    // The first chunk is full-length here (2n >= chunk_len? with n=4,
    // T=8, chunk_len=4 -> l=4).
    let verify_start = chunk_rounds + owners_rounds;
    let mut flips = vec![false; verify_start + config.verify_repetitions];
    for f in flips.iter_mut().skip(verify_start) {
        *f = true;
    }
    let mut ch = ScriptedChannel::new(n, flips);
    let out = sim
        .simulate_over(&inputs, NoiseModel::Correlated { epsilon: 0.2 }, &mut ch)
        .unwrap();
    // The phantom flag costs a rewind but not correctness.
    assert!(out.stats().rewinds >= 1, "{:?}", out.stats());
    assert_eq!(out.transcript(), truth.transcript());
}

#[test]
fn persistent_chunk_corruption_exhausts_the_budget() {
    // An adversary that corrupts every chunk-simulation round (but leaves
    // the owners and verification phases clean) forces an endless
    // detect-and-rewind loop: nothing ever commits and the budget runs
    // out. (Inverting *every* round including verification would defeat
    // any scheme — the flag OR itself would be erased — so the honest
    // adversary model here is per-phase.)
    let n = 3;
    let p = MultiOr::new(n, 6);
    let inputs: Vec<Vec<bool>> = (0..n).map(|i| vec![i == 0; 6]).collect();
    let mut config = config_for(n);
    config.budget_factor = 3.0;
    let sim = RewindSimulator::new(&p, config.clone());

    // With nothing ever committing, every iteration simulates a
    // full-length chunk, so the phase layout is periodic and scriptable.
    let l = config.chunk_len;
    let chunk_rounds = l * config.repetitions;
    let per_iter =
        chunk_rounds + (config.chunk_len + n) * config.code_len + config.verify_repetitions;
    let total = per_iter * 400;
    let mut flips = vec![false; total];
    for it in 0..400 {
        for r in 0..chunk_rounds {
            flips[it * per_iter + r] = true;
        }
    }
    let mut ch = ScriptedChannel::new(n, flips);
    let err = sim
        .simulate_over(&inputs, NoiseModel::Correlated { epsilon: 0.2 }, &mut ch)
        .unwrap_err();
    match err {
        noisy_beeps::core::SimError::BudgetExhausted { committed, .. } => {
            assert_eq!(committed, 0, "nothing should commit under chunk corruption");
        }
        other => panic!("expected budget exhaustion, got {other}"),
    }
}

#[test]
fn burst_errors_in_owners_phase_do_not_corrupt_the_output() {
    // Corrupt an entire codeword slot in the owners phase: the decoded
    // owner may be wrong, verification flags it, and the final transcript
    // is still exact.
    let n = 4;
    let p = InputSet::new(n);
    let inputs = [2usize, 4, 6, 0];
    let truth = run_noiseless(&p, &inputs);
    let config = config_for(n);
    let sim = RewindSimulator::new(&p, config.clone());

    let l = config.chunk_len.min(p.length());
    let chunk_rounds = l * config.repetitions;
    let w = config.code_len;
    // Corrupt the second owners iteration wholesale.
    let start = chunk_rounds + w;
    let mut flips = vec![false; start + w];
    for f in flips.iter_mut().skip(start) {
        *f = true;
    }
    let mut ch = ScriptedChannel::new(n, flips);
    let out = sim
        .simulate_over(&inputs, NoiseModel::Correlated { epsilon: 0.2 }, &mut ch)
        .unwrap();
    assert_eq!(out.transcript(), truth.transcript());
}

#[test]
fn scripted_flips_on_idle_tail_are_harmless() {
    // Flips after the protocol has finished must not matter.
    let p = InputSet::new(3);
    let inputs = [0usize, 1, 2];
    let truth = run_noiseless(&p, &inputs);
    let sim = RewindSimulator::new(&p, config_for(3));
    let mut flips = vec![false; 100_000];
    for f in flips.iter_mut().skip(50_000) {
        *f = true;
    }
    let mut ch = ScriptedChannel::new(3, flips);
    let out = sim
        .simulate_over(&inputs, NoiseModel::Correlated { epsilon: 0.2 }, &mut ch)
        .unwrap();
    assert_eq!(out.transcript(), truth.transcript());
}
