//! Statistical validation of Theorem D.1: the finding-owners phase of
//! Algorithm 1 ends, except with small probability, with all parties
//! agreeing on an owner for every 1-round, and every owner actually beeped.

use noisy_beeps::channel::NoiseModel;
use noisy_beeps::core::run_owners_phase;
use noisy_beeps::info::tail;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_bits(n: usize, len: usize, density: f64, rng: &mut StdRng) -> Vec<Vec<bool>> {
    (0..n)
        .map(|_| (0..len).map(|_| rng.gen_bool(density)).collect())
        .collect()
}

#[test]
fn theorem_d1_holds_at_the_papers_noise_rate() {
    // eps = 1/3, one-sided (the lower-bound channel); the code is sized by
    // the Z-channel cutoff-rate bound for a 1e-3 per-word target.
    let n = 8;
    let len = 8;
    let eps = 1.0 / 3.0;
    let code_len = tail::random_code_length(len + 1, tail::cutoff_rate_z(eps), 1e-3);
    let mut rng = StdRng::seed_from_u64(0xD1D1);
    let trials = 60;
    let mut valid = 0;
    for t in 0..trials {
        let bits = random_bits(n, len, 0.25, &mut rng);
        let out = run_owners_phase(
            &bits,
            NoiseModel::OneSidedZeroToOne { epsilon: eps },
            code_len,
            t,
            9000 + t,
        );
        if out.valid_for(&bits) {
            valid += 1;
        }
    }
    assert!(
        valid >= trials - 2,
        "owners phase valid in only {valid}/{trials} runs"
    );
}

#[test]
fn theorem_d1_holds_under_two_sided_noise() {
    let n = 6;
    let len = 6;
    let eps = 0.15;
    let code_len = tail::random_code_length(len + 1, tail::cutoff_rate_bsc(eps), 1e-3);
    let mut rng = StdRng::seed_from_u64(0xD1D2);
    let trials = 60;
    let mut valid = 0;
    for t in 0..trials {
        let bits = random_bits(n, len, 0.3, &mut rng);
        let out = run_owners_phase(
            &bits,
            NoiseModel::Correlated { epsilon: eps },
            code_len,
            t,
            7000 + t,
        );
        if out.valid_for(&bits) {
            valid += 1;
        }
    }
    assert!(
        valid >= trials - 2,
        "owners phase valid in only {valid}/{trials} runs"
    );
}

#[test]
fn owner_is_first_claimant_in_turn_order() {
    // Determinism check mirroring Algorithm 1's schedule: with everyone
    // beeping everywhere, party 0 owns the earliest rounds, and later
    // parties only own what earlier ones left unclaimed (nothing).
    let n = 3;
    let len = 3;
    let bits = vec![vec![true; len]; n];
    let out = run_owners_phase(&bits, NoiseModel::Noiseless, 32, 5, 6);
    assert!(out.valid_for(&bits));
    // Party 0 claims rounds 0, 1, 2 across its turns... Algorithm 1 lets
    // the turn holder keep claiming until it sends Next, so party 0 owns
    // everything.
    assert_eq!(out.owners[0], vec![Some(0), Some(0), Some(0)]);
}

#[test]
fn undersized_codes_degrade_but_never_break_agreement() {
    // Failure injection: an 8-bit code at eps=1/3 is hopeless, yet under
    // correlated noise all parties must still agree on the (wrong) owners.
    let mut rng = StdRng::seed_from_u64(0xBAD);
    for t in 0..20 {
        let bits = random_bits(5, 6, 0.4, &mut rng);
        let out = run_owners_phase(
            &bits,
            NoiseModel::Correlated { epsilon: 1.0 / 3.0 },
            8,
            t,
            t,
        );
        let first = &out.owners[0];
        assert!(out.owners.iter().all(|o| o == first), "agreement broke");
    }
}

#[test]
fn validity_rate_improves_with_code_length() {
    // Experiment E4 in miniature: longer codewords, fewer failures.
    let n = 6;
    let len = 6;
    let eps = 1.0 / 3.0;
    let mut rng = StdRng::seed_from_u64(0xE4);
    let mut rates = Vec::new();
    for &code_len in &[6usize, 18, 60] {
        let mut valid = 0;
        let trials = 40;
        for t in 0..trials {
            let bits = random_bits(n, len, 0.3, &mut rng);
            let out = run_owners_phase(
                &bits,
                NoiseModel::OneSidedZeroToOne { epsilon: eps },
                code_len,
                t,
                500 + t,
            );
            if out.valid_for(&bits) {
                valid += 1;
            }
        }
        rates.push(valid);
    }
    assert!(
        rates[2] > rates[0],
        "validity should improve with code length: {rates:?}"
    );
    assert!(
        rates[2] >= 38,
        "long code should almost always work: {rates:?}"
    );
}
