//! The reproducibility contract: same seed, same everything — bitwise.
//!
//! Every experiment in `EXPERIMENTS.md` leans on this; pin it for every
//! simulator and channel so a regression cannot hide.

use noisy_beeps::channel::{run_protocol, NoiseModel};
use noisy_beeps::core::{
    run_owners_phase, HierarchicalSimulator, OneToZeroSimulator, OwnedRoundsSimulator,
    RepetitionSimulator, RewindSimulator, SimulatorConfig,
};
use noisy_beeps::protocols::{InputSet, RollCall};

#[test]
fn noisy_executions_are_seed_deterministic() {
    let p = InputSet::new(6);
    let inputs = [0usize, 3, 7, 7, 10, 2];
    for model in [
        NoiseModel::Correlated { epsilon: 0.3 },
        NoiseModel::OneSidedZeroToOne { epsilon: 0.3 },
        NoiseModel::OneSidedOneToZero { epsilon: 0.3 },
        NoiseModel::Independent { epsilon: 0.3 },
    ] {
        let a = run_protocol(&p, &inputs, model, 12345);
        let b = run_protocol(&p, &inputs, model, 12345);
        assert_eq!(a, b, "{model} diverged across identical runs");
        let c = run_protocol(&p, &inputs, model, 54321);
        assert!(
            a.views() != c.views() || a.corrupted_rounds() == c.corrupted_rounds(),
            "different seeds should (almost always) differ"
        );
    }
}

#[test]
fn all_simulators_are_seed_deterministic() {
    let n = 5;
    let p = InputSet::new(n);
    let inputs = [1usize, 4, 8, 2, 9];
    let model = NoiseModel::Correlated { epsilon: 0.15 };
    let config = SimulatorConfig::builder(n).model(model).build();

    let a = RepetitionSimulator::new(&p, config.clone())
        .simulate(&inputs, model, 7)
        .unwrap();
    let b = RepetitionSimulator::new(&p, config.clone())
        .simulate(&inputs, model, 7)
        .unwrap();
    assert_eq!(a, b);

    let a = RewindSimulator::new(&p, config.clone())
        .simulate(&inputs, model, 7)
        .unwrap();
    let b = RewindSimulator::new(&p, config.clone())
        .simulate(&inputs, model, 7)
        .unwrap();
    assert_eq!(a, b);

    let a = HierarchicalSimulator::new(&p, config.clone())
        .simulate(&inputs, model, 7)
        .unwrap();
    let b = HierarchicalSimulator::new(&p, config)
        .simulate(&inputs, model, 7)
        .unwrap();
    assert_eq!(a, b);

    let down = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
    let a = OneToZeroSimulator::new(&p, 2, 24.0)
        .simulate(&inputs, down, 7)
        .unwrap();
    let b = OneToZeroSimulator::new(&p, 2, 24.0)
        .simulate(&inputs, down, 7)
        .unwrap();
    assert_eq!(a, b);

    let rc = RollCall::new(n);
    let bits = [true, false, true, true, false];
    let cfg = SimulatorConfig::builder(n).model(model).build();
    let a = OwnedRoundsSimulator::new(&rc, cfg.clone())
        .simulate(&bits, model, 7)
        .unwrap();
    let b = OwnedRoundsSimulator::new(&rc, cfg)
        .simulate(&bits, model, 7)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn owners_phase_is_seed_deterministic() {
    let bits = vec![
        vec![true, false, true, false],
        vec![false, true, false, false],
        vec![true, true, false, false],
    ];
    let model = NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 };
    let a = run_owners_phase(&bits, model, 40, 3, 11);
    let b = run_owners_phase(&bits, model, 40, 3, 11);
    assert_eq!(a, b);
}
