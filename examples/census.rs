//! Noise-resilient network-size estimation (census).
//!
//! One-sided `0→1` noise keeps "busy" rounds alive and systematically
//! inflates the geometric size estimate; the simulation scheme restores
//! the noiseless behaviour.
//!
//! ```text
//! cargo run --release --example census
//! ```

use noisy_beeps::channel::{run_noiseless, run_protocol, NoiseModel};
use noisy_beeps::core::{RewindSimulator, SimulatorConfig};
use noisy_beeps::protocols::Census;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let n = 32;
    let phases = 14;
    let protocol = Census::new(n, phases);
    let model = NoiseModel::OneSidedZeroToOne { epsilon: 1.0 / 3.0 };
    let trials = 30;

    println!("== census: estimate network size n = {n} ==");

    // beeps-lint: allow(seed-provenance) -- fixed demo seed keeps this example's printed output stable across runs; not a TrialRunner path, so per-trial derivation does not apply
    let mut rng = StdRng::seed_from_u64(0xCE25);
    let mut clean_sum = 0usize;
    let mut naked_sum = 0usize;
    let mut simulated_sum = 0usize;
    let mut simulated_runs = 0usize;

    for seed in 0..trials {
        // Randomized protocol = deterministic protocol + random tape input.
        let inputs: Vec<Vec<bool>> = (0..n).map(|_| protocol.sample_input(&mut rng)).collect();

        let clean = run_noiseless(&protocol, &inputs).outputs()[0];
        clean_sum += clean;

        let naked = run_protocol(&protocol, &inputs, model, seed).outputs()[0];
        naked_sum += naked;

        let config = SimulatorConfig::builder(n).model(model).build();
        let sim = RewindSimulator::new(&protocol, config);
        if let Ok(outcome) = sim.simulate(&inputs, model, seed) {
            simulated_sum += outcome.outputs()[0];
            simulated_runs += 1;
        }
    }

    println!(
        "noiseless estimate (avg over {trials} tapes): {:.0}",
        clean_sum as f64 / trials as f64
    );
    println!(
        "naked over {model}: avg estimate {:.0}  <- inflated by phantom beeps",
        naked_sum as f64 / trials as f64
    );
    println!(
        "simulated (Thm 1.2): avg estimate {:.0} over {simulated_runs} runs \
         <- matches noiseless",
        simulated_sum as f64 / simulated_runs.max(1) as f64
    );
}
