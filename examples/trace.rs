//! Visual trace of a noisy beeping execution: watch noise hit the naked
//! protocol, then watch the simulator absorb it.
//!
//! ```text
//! cargo run --release --example trace
//! ```

use noisy_beeps::channel::{
    run_noiseless, run_protocol_over, Channel, NoiseModel, Protocol, StochasticChannel,
    TracingChannel,
};
use noisy_beeps::core::{RewindSimulator, SimulatorConfig};
use noisy_beeps::protocols::InputSet;

fn main() {
    let n = 6;
    let protocol = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (3 * i + 1) % (2 * n)).collect();
    let model = NoiseModel::Correlated { epsilon: 0.25 };

    println!("== traced InputSet_{n} over {model} ==");
    println!("inputs: {inputs:?}\n");

    // Naked run, traced: every X in the noise strip is a corrupted round.
    let inner = StochasticChannel::new(n, model, 0xBEE);
    let mut traced = TracingChannel::new(inner);
    let naked = run_protocol_over(&protocol, &inputs, &mut traced);
    println!("--- naked protocol ({} rounds) ---", protocol.length());
    print!("{}", traced.render(2 * n));
    let truth = run_noiseless(&protocol, &inputs);
    println!(
        "naked output correct: {}\n",
        naked.outputs()[0] == truth.outputs()[0]
    );

    // Simulated run, traced: far more rounds, but the committed result is
    // exact; print only the summary plus the first strip of activity.
    let inner = StochasticChannel::new(n, model, 0xBEE);
    let mut traced = TracingChannel::new(inner);
    let sim = RewindSimulator::new(&protocol, SimulatorConfig::builder(n).model(model).build());
    let outcome = sim
        .simulate_over(&inputs, model, &mut traced)
        .expect("within budget");
    println!(
        "--- simulated (Thm 1.2): {} channel rounds, {} corrupted, {} rewinds ---",
        traced.rounds(),
        traced.corrupted_rounds(),
        outcome.stats().rewinds
    );
    let first_strip: Vec<_> = traced.log()[..(2 * n * 4).min(traced.log().len())].to_vec();
    print!(
        "{}",
        noisy_beeps::channel::trace::render_strips(&first_strip, 2 * n * 2)
    );
    println!(
        "simulated output correct: {}",
        outcome.outputs()[0] == truth.outputs()[0]
    );
}
