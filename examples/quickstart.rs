//! Quickstart: the paper's `InputSet_n` task, broken by noise and then
//! rescued by the Theorem 1.2 simulation scheme.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noisy_beeps::channel::{run_noiseless, run_protocol, NoiseModel, Protocol};
use noisy_beeps::core::{RewindSimulator, SimulatorConfig};
use noisy_beeps::protocols::InputSet;

fn main() {
    let n = 8;
    let epsilon = 1.0 / 3.0;
    let model = NoiseModel::Correlated { epsilon };
    let protocol = InputSet::new(n);
    let inputs: Vec<usize> = (0..n).map(|i| (5 * i + 2) % (2 * n)).collect();

    println!("== InputSet_{n} over the beeping channel ==");
    println!("inputs: {inputs:?}");

    // 1. Ground truth: the trivial 2n-round noiseless protocol.
    let truth = run_noiseless(&protocol, &inputs);
    println!(
        "noiseless protocol ({} rounds) computes L(x) = {:?}",
        protocol.length(),
        truth.outputs()[0]
    );

    // 2. The same protocol run naked over the eps-noisy channel: broken.
    let mut naked_failures = 0;
    let trials = 50;
    for seed in 0..trials {
        let noisy = run_protocol(&protocol, &inputs, model, seed);
        if noisy.outputs()[0] != truth.outputs()[0] {
            naked_failures += 1;
        }
    }
    println!("naked over {model}: wrong output in {naked_failures}/{trials} runs");

    // 3. Theorem 1.2: the rewind-if-error simulation with owners.
    let config = SimulatorConfig::builder(n).model(model).build();
    let sim = RewindSimulator::new(&protocol, config);
    let mut simulated_failures = 0;
    let mut rounds = 0usize;
    for seed in 0..trials {
        match sim.simulate(&inputs, model, seed) {
            Ok(outcome) => {
                rounds += outcome.stats().channel_rounds;
                if outcome.outputs()[0] != truth.outputs()[0] {
                    simulated_failures += 1;
                }
            }
            Err(err) => {
                println!("  budget miss: {err}");
                simulated_failures += 1;
            }
        }
    }
    let avg_rounds = rounds as f64 / trials as f64;
    println!(
        "simulated (Theorem 1.2): wrong output in {simulated_failures}/{trials} runs, \
         avg {avg_rounds:.0} channel rounds = {:.1}x overhead",
        avg_rounds / protocol.length() as f64
    );
    println!("(the paper: Theta(log n) overhead is necessary and sufficient for this task)");
}
