//! A composed wireless-sensor-network pipeline — membership discovery,
//! then leader election, then the *elected* leader broadcasts a payload —
//! run as ONE beeping protocol via the `Chained` combinator and protected
//! end-to-end by the Theorem 1.2 simulator (including the hand-offs
//! between phases).
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use noisy_beeps::channel::{run_noiseless, run_protocol, NoiseModel, Protocol};
use noisy_beeps::core::{RewindSimulator, SimulatorConfig};
use noisy_beeps::protocols::combinators::Chained;
use noisy_beeps::protocols::LeaderElection;

/// Phase 3: the party holding `Some(payload)` beeps it, 8 bits MSB-first.
struct Announce {
    n: usize,
}

impl Protocol for Announce {
    type Input = Option<usize>;
    type Output = usize;

    fn num_parties(&self) -> usize {
        self.n
    }

    fn length(&self) -> usize {
        8
    }

    fn beep(&self, _party: usize, input: &Option<usize>, transcript: &[bool]) -> bool {
        input.is_some_and(|m| (m >> (7 - transcript.len())) & 1 == 1)
    }

    fn output(&self, _party: usize, _input: &Option<usize>, transcript: &[bool]) -> usize {
        transcript
            .iter()
            .fold(0usize, |acc, &b| (acc << 1) | usize::from(b))
    }
}

fn main() {
    let n = 6;
    // Sensor ids double as inputs; the leader announces a reading derived
    // from its id (stand-in for a measurement).
    let ids = [0x3A, 0x51, 0x2C, 0x77, 0x68, 0x19];

    let pipeline = Chained::new(LeaderElection::new(n, 8), Announce { n }, |id, leader| {
        (*id == leader).then_some((id * 3) % 256)
    });

    let truth = run_noiseless(&pipeline, &ids);
    let (leader, reading) = truth.outputs()[0];
    println!("== sensor network: elect + announce over one noisy channel ==");
    println!("ids: {ids:02X?}");
    println!("noiseless: leader {leader:#04X} announces reading {reading}");

    let model = NoiseModel::Correlated { epsilon: 0.15 };
    let trials = 30u64;

    // Naked pipeline: phase errors compound (a corrupted election makes
    // the wrong node broadcast, or nobody at all).
    let mut naked_bad = 0;
    for seed in 0..trials {
        let out = run_protocol(&pipeline, &ids, model, seed);
        if out.outputs().iter().any(|o| *o != (leader, reading)) {
            naked_bad += 1;
        }
    }
    println!("naked over {model}: {naked_bad}/{trials} pipelines corrupted");

    // Simulated pipeline: one scheme protects all phases and hand-offs.
    let sim = RewindSimulator::new(&pipeline, SimulatorConfig::builder(n).model(model).build());
    let mut sim_bad = 0;
    let mut overhead = 0.0;
    let mut done = 0u32;
    for seed in 0..trials {
        match sim.simulate(&ids, model, seed) {
            Ok(out) => {
                done += 1;
                overhead += out.stats().overhead();
                if out.outputs().iter().any(|o| *o != (leader, reading)) {
                    sim_bad += 1;
                }
            }
            Err(_) => sim_bad += 1,
        }
    }
    println!(
        "simulated (Thm 1.2): {sim_bad}/{trials} corrupted, avg overhead {:.1}x",
        overhead / f64::from(done.max(1))
    );
}
