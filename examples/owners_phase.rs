//! Algorithm 1's finding-owners phase, step by step: the heart of the
//! paper's upper bound, run standalone.
//!
//! ```text
//! cargo run --release --example owners_phase
//! ```

use noisy_beeps::channel::NoiseModel;
use noisy_beeps::core::run_owners_phase;
use noisy_beeps::info::tail;

fn main() {
    // Three parties beeped through a 6-round chunk:
    //
    //            round:  0  1  2  3  4  5
    let bits = vec![
        vec![true, false, true, false, false, false], // party 0
        vec![true, true, false, false, false, false], // party 1
        vec![false, true, true, false, true, false],  // party 2
    ];
    let pi: Vec<bool> = (0..6).map(|j| bits.iter().any(|b| b[j])).collect();

    println!("== Algorithm 1: finding owners for a 6-round chunk ==");
    println!("per-party beeps:");
    for (i, b) in bits.iter().enumerate() {
        let strip: String = b.iter().map(|&x| if x { '#' } else { '.' }).collect();
        println!("  party {i}:  {strip}");
    }
    let strip: String = pi.iter().map(|&x| if x { '#' } else { '.' }).collect();
    println!("  pi (OR):  {strip}");
    println!();

    // Codeword length sized by the Z-channel cutoff rate, as the
    // simulators do it.
    let eps = 1.0 / 3.0;
    let code_len = tail::random_code_length(7, tail::cutoff_rate_z(eps), 1e-4);
    println!("code: C : [6] u {{Next}} -> {{0,1}}^{code_len} (sized for eps=1/3, target 1e-4)");

    let out = run_owners_phase(
        &bits,
        NoiseModel::OneSidedZeroToOne { epsilon: eps },
        code_len,
        7,
        42,
    );
    println!(
        "phase took {} noisy channel rounds ((L + n) = 9 codeword slots)\n",
        out.channel_rounds
    );
    println!("computed owners (per round):");
    for (j, owner) in out.owners[0].iter().enumerate() {
        match owner {
            Some(o) => println!("  round {j}: owned by party {o} (beeped: {})", bits[*o][j]),
            None => println!("  round {j}: no owner (silent round)"),
        }
    }
    println!();
    println!(
        "Theorem D.1 check — all parties agree, every owner beeped: {}",
        out.valid_for(&bits)
    );
    println!();
    println!("In the full scheme these owners make the 1s of the transcript");
    println!("verifiable: each owner vouches for its rounds during the");
    println!("verification phase, enabling rewind-if-error (Appendix D.2).");
}
