//! Noise-resilient leader election: a classic beeping-network workload
//! (the paper's wireless-network motivation), made reliable with each of
//! the three coding schemes.
//!
//! ```text
//! cargo run --release --example leader_election
//! ```

use noisy_beeps::channel::{run_noiseless, run_protocol, NoiseModel};
use noisy_beeps::core::{
    OneToZeroSimulator, RepetitionSimulator, RewindSimulator, SimulatorConfig,
};
use noisy_beeps::protocols::LeaderElection;

fn main() {
    let n = 6;
    let bits = 12;
    let protocol = LeaderElection::new(n, bits);
    let ids = [0x2F1, 0x9A0, 0x777, 0x005, 0xB13, 0x4C4];
    let truth = run_noiseless(&protocol, &ids);
    let leader = truth.outputs()[0];
    println!("== leader election among {n} parties, {bits}-bit ids ==");
    println!("ids: {ids:04X?}; true leader: {leader:#05X}");

    let trials = 40;

    // Naked protocol under two-sided noise: phantom or wrong leaders.
    let two_sided = NoiseModel::Correlated { epsilon: 0.2 };
    let mut wrong = 0;
    for seed in 0..trials {
        let out = run_protocol(&protocol, &ids, two_sided, seed);
        if out.outputs().iter().any(|&o| o != leader) {
            wrong += 1;
        }
    }
    println!("naked over {two_sided}: {wrong}/{trials} elections corrupted");

    // Scheme 1: repetition (footnote 1) — fine for short protocols.
    let config = SimulatorConfig::builder(n).model(two_sided).build();
    let rep = RepetitionSimulator::new(&protocol, config.clone());
    report(
        "repetition scheme",
        trials,
        |seed| {
            rep.simulate(&ids, two_sided, seed)
                .map(|o| (o.outputs().to_vec(), o.stats().overhead()))
        },
        leader,
    );

    // Scheme 2: the full Theorem 1.2 rewind scheme.
    let rewind = RewindSimulator::new(&protocol, config);
    report(
        "rewind scheme (Thm 1.2)",
        trials,
        |seed| {
            rewind
                .simulate(&ids, two_sided, seed)
                .map(|o| (o.outputs().to_vec(), o.stats().overhead()))
        },
        leader,
    );

    // Scheme 3: constant overhead, but only over 1->0 noise (§2 asymmetry).
    let down = NoiseModel::OneSidedOneToZero { epsilon: 1.0 / 3.0 };
    let one_zero = OneToZeroSimulator::new(&protocol, 2, 24.0);
    report(
        "constant-overhead scheme over 1->0 noise",
        trials,
        |seed| {
            one_zero
                .simulate(&ids, down, seed)
                .map(|o| (o.outputs().to_vec(), o.stats().overhead()))
        },
        leader,
    );
}

fn report<F>(name: &str, trials: u64, mut run: F, leader: usize)
where
    F: FnMut(u64) -> Result<(Vec<usize>, f64), noisy_beeps::core::SimError>,
{
    let mut wrong = 0;
    let mut overhead = 0.0;
    let mut completed = 0u32;
    for seed in 0..trials {
        match run(seed) {
            Ok((outputs, oh)) => {
                completed += 1;
                overhead += oh;
                if outputs.iter().any(|&o| o != leader) {
                    wrong += 1;
                }
            }
            Err(_) => wrong += 1,
        }
    }
    let avg = if completed > 0 {
        overhead / f64::from(completed)
    } else {
        f64::NAN
    };
    println!("{name}: {wrong}/{trials} corrupted, avg overhead {avg:.1}x");
}
