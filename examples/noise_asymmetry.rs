//! The paper's central asymmetry, live: noise that *erases* beeps
//! (`1→0`) admits constant-overhead coding, while noise that *creates*
//! beeps (`0→1`) forces `Θ(log n)` overhead (Theorems 1.1 and 1.2, and
//! the §2 discussion).
//!
//! ```text
//! cargo run --release --example noise_asymmetry
//! ```

use noisy_beeps::channel::{run_noiseless, NoiseModel, Protocol};
use noisy_beeps::core::{OneToZeroSimulator, RewindSimulator, SimulatorConfig};
use noisy_beeps::lowerbound::min_repetitions_exact;
use noisy_beeps::protocols::InputSet;

fn main() {
    let eps = 1.0 / 3.0;
    println!("== overhead to simulate InputSet_n at eps = 1/3, by noise direction ==");
    println!(
        "{:>6} {:>22} {:>22} {:>22}",
        "n", "1->0 noise (measured)", "0->1 noise (measured)", "0->1 minimum (exact)"
    );

    for n in [4usize, 8, 16, 32] {
        let protocol = InputSet::new(n);
        let inputs: Vec<usize> = (0..n).map(|i| (3 * i + 1) % (2 * n)).collect();
        let truth = run_noiseless(&protocol, &inputs);

        // 1->0 noise: constant-overhead scheme.
        let down = NoiseModel::OneSidedOneToZero { epsilon: eps };
        let z_sim = OneToZeroSimulator::new(&protocol, 2, 24.0);
        let mut z_overhead = f64::NAN;
        for seed in 0..5 {
            if let Ok(out) = z_sim.simulate(&inputs, down, seed) {
                assert_eq!(out.transcript(), truth.transcript());
                z_overhead = out.stats().overhead();
                break;
            }
        }

        // 0->1 noise: the rewind scheme (cost grows with log n).
        let up = NoiseModel::OneSidedZeroToOne { epsilon: eps };
        let sim = RewindSimulator::new(&protocol, SimulatorConfig::builder(n).model(up).build());
        let mut up_overhead = f64::NAN;
        for seed in 0..5 {
            if let Ok(out) = sim.simulate(&inputs, up, seed) {
                assert_eq!(out.transcript(), truth.transcript());
                up_overhead = out.stats().overhead();
                break;
            }
        }

        // The information-theoretic floor for 0->1 noise: minimum
        // repetitions for the trivial protocol to survive at 90%.
        let floor = min_repetitions_exact(n, eps, 0.9).min_repetitions;

        println!("{n:>6} {z_overhead:>21.1}x {up_overhead:>21.1}x {floor:>21}x");
        let _ = protocol.length();
    }
    println!();
    println!("1->0 stays flat (constant); 0->1 grows with n (the Omega(log n) bound).");
}
