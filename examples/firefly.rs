//! Firefly phase synchronization — the paper's biological motivation —
//! under independent noise, where parties can end up with *different*
//! transcripts and desynchronize.
//!
//! ```text
//! cargo run --release --example firefly
//! ```

use noisy_beeps::channel::{run_noiseless, run_protocol, NoiseModel, PartyViews};
use noisy_beeps::core::{RewindSimulator, SimulatorConfig};
use noisy_beeps::protocols::FireflySync;

fn main() {
    let n = 10;
    let period = 12;
    let protocol = FireflySync::new(n, period);
    let offsets: Vec<usize> = (0..n).map(|i| (7 * i + 3) % period).collect();
    let truth = run_noiseless(&protocol, &offsets);
    println!("== firefly synchronization: {n} fireflies, period {period} ==");
    println!("offsets: {offsets:?}");
    println!("noiseless sync phase: {}", truth.outputs()[0]);

    // Independent noise (§1.2): each firefly mis-sees flashes on its own.
    let model = NoiseModel::Independent { epsilon: 0.15 };
    let trials = 40;

    let mut desync = 0;
    for seed in 0..trials {
        let out = run_protocol(&protocol, &offsets, model, seed);
        if let PartyViews::PerParty(_) = out.views() {
            let first = out.outputs()[0];
            if out.outputs().iter().any(|&o| o != first) {
                desync += 1;
            }
        }
    }
    println!("naked over {model}: fireflies disagree on the phase in {desync}/{trials} runs");

    // Theorem 1.2 applies to independent noise too (§1.2).
    let config = SimulatorConfig::builder(n).model(model).build();
    let sim = RewindSimulator::new(&protocol, config);
    let mut desync = 0;
    let mut wrong = 0;
    let mut done = 0;
    for seed in 0..trials {
        if let Ok(out) = sim.simulate(&offsets, model, seed) {
            done += 1;
            let first = out.outputs()[0];
            if out.outputs().iter().any(|&o| o != first) {
                desync += 1;
            }
            if first != truth.outputs()[0] {
                wrong += 1;
            }
        }
    }
    println!(
        "simulated (Thm 1.2 over independent noise): {done}/{trials} completed, \
         {desync} disagreements, {wrong} wrong phases"
    );
}
