/root/repo/target/debug/examples/census-0b1af2e0be892b19.d: examples/census.rs

/root/repo/target/debug/examples/census-0b1af2e0be892b19: examples/census.rs

examples/census.rs:
