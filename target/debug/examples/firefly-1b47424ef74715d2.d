/root/repo/target/debug/examples/firefly-1b47424ef74715d2.d: examples/firefly.rs

/root/repo/target/debug/examples/firefly-1b47424ef74715d2: examples/firefly.rs

examples/firefly.rs:
