/root/repo/target/debug/examples/noise_asymmetry-021029e3555bda7a.d: examples/noise_asymmetry.rs

/root/repo/target/debug/examples/noise_asymmetry-021029e3555bda7a: examples/noise_asymmetry.rs

examples/noise_asymmetry.rs:
