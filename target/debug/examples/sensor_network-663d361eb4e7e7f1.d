/root/repo/target/debug/examples/sensor_network-663d361eb4e7e7f1.d: examples/sensor_network.rs

/root/repo/target/debug/examples/sensor_network-663d361eb4e7e7f1: examples/sensor_network.rs

examples/sensor_network.rs:
