/root/repo/target/debug/examples/owners_phase-738f1e14d43947bd.d: examples/owners_phase.rs

/root/repo/target/debug/examples/owners_phase-738f1e14d43947bd: examples/owners_phase.rs

examples/owners_phase.rs:
