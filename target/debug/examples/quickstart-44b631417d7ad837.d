/root/repo/target/debug/examples/quickstart-44b631417d7ad837.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-44b631417d7ad837: examples/quickstart.rs

examples/quickstart.rs:
