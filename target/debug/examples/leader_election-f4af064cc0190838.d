/root/repo/target/debug/examples/leader_election-f4af064cc0190838.d: examples/leader_election.rs

/root/repo/target/debug/examples/leader_election-f4af064cc0190838: examples/leader_election.rs

examples/leader_election.rs:
