/root/repo/target/debug/examples/trace-d75572295d6f30fc.d: examples/trace.rs

/root/repo/target/debug/examples/trace-d75572295d6f30fc: examples/trace.rs

examples/trace.rs:
