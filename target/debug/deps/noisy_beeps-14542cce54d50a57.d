/root/repo/target/debug/deps/noisy_beeps-14542cce54d50a57.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/noisy_beeps-14542cce54d50a57: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
