/root/repo/target/debug/deps/fig3_noise_asymmetry-cb77860bf1dd7f87.d: crates/bench/src/bin/fig3_noise_asymmetry.rs

/root/repo/target/debug/deps/fig3_noise_asymmetry-cb77860bf1dd7f87: crates/bench/src/bin/fig3_noise_asymmetry.rs

crates/bench/src/bin/fig3_noise_asymmetry.rs:
