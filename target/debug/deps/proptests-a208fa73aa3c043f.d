/root/repo/target/debug/deps/proptests-a208fa73aa3c043f.d: crates/ecc/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a208fa73aa3c043f: crates/ecc/tests/proptests.rs

crates/ecc/tests/proptests.rs:
