/root/repo/target/debug/deps/tab5_scheme_ablation-96daad5ea3cdd5f3.d: crates/bench/src/bin/tab5_scheme_ablation.rs

/root/repo/target/debug/deps/tab5_scheme_ablation-96daad5ea3cdd5f3: crates/bench/src/bin/tab5_scheme_ablation.rs

crates/bench/src/bin/tab5_scheme_ablation.rs:
