/root/repo/target/debug/deps/beeps_core-2cdf6e2b3b2fdc92.d: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/hierarchical.rs crates/core/src/one_to_zero.rs crates/core/src/outcome.rs crates/core/src/owned_rounds.rs crates/core/src/owners.rs crates/core/src/params.rs crates/core/src/repetition.rs crates/core/src/rewind.rs crates/core/src/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libbeeps_core-2cdf6e2b3b2fdc92.rmeta: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/hierarchical.rs crates/core/src/one_to_zero.rs crates/core/src/outcome.rs crates/core/src/owned_rounds.rs crates/core/src/owners.rs crates/core/src/params.rs crates/core/src/repetition.rs crates/core/src/rewind.rs crates/core/src/simulator.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/driver.rs:
crates/core/src/hierarchical.rs:
crates/core/src/one_to_zero.rs:
crates/core/src/outcome.rs:
crates/core/src/owned_rounds.rs:
crates/core/src/owners.rs:
crates/core/src/params.rs:
crates/core/src/repetition.rs:
crates/core/src/rewind.rs:
crates/core/src/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
