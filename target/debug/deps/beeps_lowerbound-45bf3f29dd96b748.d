/root/repo/target/debug/deps/beeps_lowerbound-45bf3f29dd96b748.d: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs

/root/repo/target/debug/deps/libbeeps_lowerbound-45bf3f29dd96b748.rlib: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs

/root/repo/target/debug/deps/libbeeps_lowerbound-45bf3f29dd96b748.rmeta: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs

crates/lowerbound/src/lib.rs:
crates/lowerbound/src/crossover.rs:
crates/lowerbound/src/theorem_c3.rs:
crates/lowerbound/src/zeta.rs:
