/root/repo/target/debug/deps/beeps_bench-00b84fa34eff4795.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libbeeps_bench-00b84fa34eff4795.rlib: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libbeeps_bench-00b84fa34eff4795.rmeta: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/runner.rs:
