/root/repo/target/debug/deps/simulation_properties-9baf5c55bcd2f0de.d: tests/simulation_properties.rs

/root/repo/target/debug/deps/simulation_properties-9baf5c55bcd2f0de: tests/simulation_properties.rs

tests/simulation_properties.rs:
