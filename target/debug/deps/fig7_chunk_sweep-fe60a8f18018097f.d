/root/repo/target/debug/deps/fig7_chunk_sweep-fe60a8f18018097f.d: crates/bench/src/bin/fig7_chunk_sweep.rs

/root/repo/target/debug/deps/fig7_chunk_sweep-fe60a8f18018097f: crates/bench/src/bin/fig7_chunk_sweep.rs

crates/bench/src/bin/fig7_chunk_sweep.rs:
