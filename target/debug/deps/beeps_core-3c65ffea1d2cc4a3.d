/root/repo/target/debug/deps/beeps_core-3c65ffea1d2cc4a3.d: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/hierarchical.rs crates/core/src/one_to_zero.rs crates/core/src/outcome.rs crates/core/src/owned_rounds.rs crates/core/src/owners.rs crates/core/src/params.rs crates/core/src/repetition.rs crates/core/src/rewind.rs crates/core/src/simulator.rs

/root/repo/target/debug/deps/libbeeps_core-3c65ffea1d2cc4a3.rlib: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/hierarchical.rs crates/core/src/one_to_zero.rs crates/core/src/outcome.rs crates/core/src/owned_rounds.rs crates/core/src/owners.rs crates/core/src/params.rs crates/core/src/repetition.rs crates/core/src/rewind.rs crates/core/src/simulator.rs

/root/repo/target/debug/deps/libbeeps_core-3c65ffea1d2cc4a3.rmeta: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/hierarchical.rs crates/core/src/one_to_zero.rs crates/core/src/outcome.rs crates/core/src/owned_rounds.rs crates/core/src/owners.rs crates/core/src/params.rs crates/core/src/repetition.rs crates/core/src/rewind.rs crates/core/src/simulator.rs

crates/core/src/lib.rs:
crates/core/src/driver.rs:
crates/core/src/hierarchical.rs:
crates/core/src/one_to_zero.rs:
crates/core/src/outcome.rs:
crates/core/src/owned_rounds.rs:
crates/core/src/owners.rs:
crates/core/src/params.rs:
crates/core/src/repetition.rs:
crates/core/src/rewind.rs:
crates/core/src/simulator.rs:
