/root/repo/target/debug/deps/tab5_scheme_ablation-221e4623512dd402.d: crates/bench/src/bin/tab5_scheme_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtab5_scheme_ablation-221e4623512dd402.rmeta: crates/bench/src/bin/tab5_scheme_ablation.rs Cargo.toml

crates/bench/src/bin/tab5_scheme_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
