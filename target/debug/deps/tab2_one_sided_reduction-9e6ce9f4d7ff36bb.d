/root/repo/target/debug/deps/tab2_one_sided_reduction-9e6ce9f4d7ff36bb.d: crates/bench/src/bin/tab2_one_sided_reduction.rs

/root/repo/target/debug/deps/tab2_one_sided_reduction-9e6ce9f4d7ff36bb: crates/bench/src/bin/tab2_one_sided_reduction.rs

crates/bench/src/bin/tab2_one_sided_reduction.rs:
