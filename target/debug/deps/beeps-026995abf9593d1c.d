/root/repo/target/debug/deps/beeps-026995abf9593d1c.d: src/bin/beeps.rs Cargo.toml

/root/repo/target/debug/deps/libbeeps-026995abf9593d1c.rmeta: src/bin/beeps.rs Cargo.toml

src/bin/beeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
