/root/repo/target/debug/deps/tab7_owned_rounds-3b2e3f59b0cbb219.d: crates/bench/src/bin/tab7_owned_rounds.rs

/root/repo/target/debug/deps/tab7_owned_rounds-3b2e3f59b0cbb219: crates/bench/src/bin/tab7_owned_rounds.rs

crates/bench/src/bin/tab7_owned_rounds.rs:
