/root/repo/target/debug/deps/fig5_independent_noise-c6c6cdfee6bcf9a1.d: crates/bench/src/bin/fig5_independent_noise.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_independent_noise-c6c6cdfee6bcf9a1.rmeta: crates/bench/src/bin/fig5_independent_noise.rs Cargo.toml

crates/bench/src/bin/fig5_independent_noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
