/root/repo/target/debug/deps/fig2_lower_bound_crossover-951de9164a351e0c.d: crates/bench/src/bin/fig2_lower_bound_crossover.rs

/root/repo/target/debug/deps/fig2_lower_bound_crossover-951de9164a351e0c: crates/bench/src/bin/fig2_lower_bound_crossover.rs

crates/bench/src/bin/fig2_lower_bound_crossover.rs:
