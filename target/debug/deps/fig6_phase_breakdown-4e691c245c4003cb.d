/root/repo/target/debug/deps/fig6_phase_breakdown-4e691c245c4003cb.d: crates/bench/src/bin/fig6_phase_breakdown.rs

/root/repo/target/debug/deps/fig6_phase_breakdown-4e691c245c4003cb: crates/bench/src/bin/fig6_phase_breakdown.rs

crates/bench/src/bin/fig6_phase_breakdown.rs:
