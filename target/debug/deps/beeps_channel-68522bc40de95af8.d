/root/repo/target/debug/deps/beeps_channel-68522bc40de95af8.d: crates/channel/src/lib.rs crates/channel/src/adversary.rs crates/channel/src/burst.rs crates/channel/src/channel.rs crates/channel/src/executor.rs crates/channel/src/multiplication.rs crates/channel/src/noise.rs crates/channel/src/protocol.rs crates/channel/src/trace.rs

/root/repo/target/debug/deps/libbeeps_channel-68522bc40de95af8.rlib: crates/channel/src/lib.rs crates/channel/src/adversary.rs crates/channel/src/burst.rs crates/channel/src/channel.rs crates/channel/src/executor.rs crates/channel/src/multiplication.rs crates/channel/src/noise.rs crates/channel/src/protocol.rs crates/channel/src/trace.rs

/root/repo/target/debug/deps/libbeeps_channel-68522bc40de95af8.rmeta: crates/channel/src/lib.rs crates/channel/src/adversary.rs crates/channel/src/burst.rs crates/channel/src/channel.rs crates/channel/src/executor.rs crates/channel/src/multiplication.rs crates/channel/src/noise.rs crates/channel/src/protocol.rs crates/channel/src/trace.rs

crates/channel/src/lib.rs:
crates/channel/src/adversary.rs:
crates/channel/src/burst.rs:
crates/channel/src/channel.rs:
crates/channel/src/executor.rs:
crates/channel/src/multiplication.rs:
crates/channel/src/noise.rs:
crates/channel/src/protocol.rs:
crates/channel/src/trace.rs:
