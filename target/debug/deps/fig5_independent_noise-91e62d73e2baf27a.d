/root/repo/target/debug/deps/fig5_independent_noise-91e62d73e2baf27a.d: crates/bench/src/bin/fig5_independent_noise.rs

/root/repo/target/debug/deps/fig5_independent_noise-91e62d73e2baf27a: crates/bench/src/bin/fig5_independent_noise.rs

crates/bench/src/bin/fig5_independent_noise.rs:
