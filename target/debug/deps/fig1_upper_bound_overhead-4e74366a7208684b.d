/root/repo/target/debug/deps/fig1_upper_bound_overhead-4e74366a7208684b.d: crates/bench/src/bin/fig1_upper_bound_overhead.rs

/root/repo/target/debug/deps/fig1_upper_bound_overhead-4e74366a7208684b: crates/bench/src/bin/fig1_upper_bound_overhead.rs

crates/bench/src/bin/fig1_upper_bound_overhead.rs:
