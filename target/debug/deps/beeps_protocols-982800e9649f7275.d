/root/repo/target/debug/deps/beeps_protocols-982800e9649f7275.d: crates/protocols/src/lib.rs crates/protocols/src/broadcast.rs crates/protocols/src/census.rs crates/protocols/src/combinators.rs crates/protocols/src/firefly.rs crates/protocols/src/input_set.rs crates/protocols/src/leader.rs crates/protocols/src/membership.rs crates/protocols/src/multi_or.rs crates/protocols/src/pointer_chase.rs crates/protocols/src/roll_call.rs

/root/repo/target/debug/deps/libbeeps_protocols-982800e9649f7275.rlib: crates/protocols/src/lib.rs crates/protocols/src/broadcast.rs crates/protocols/src/census.rs crates/protocols/src/combinators.rs crates/protocols/src/firefly.rs crates/protocols/src/input_set.rs crates/protocols/src/leader.rs crates/protocols/src/membership.rs crates/protocols/src/multi_or.rs crates/protocols/src/pointer_chase.rs crates/protocols/src/roll_call.rs

/root/repo/target/debug/deps/libbeeps_protocols-982800e9649f7275.rmeta: crates/protocols/src/lib.rs crates/protocols/src/broadcast.rs crates/protocols/src/census.rs crates/protocols/src/combinators.rs crates/protocols/src/firefly.rs crates/protocols/src/input_set.rs crates/protocols/src/leader.rs crates/protocols/src/membership.rs crates/protocols/src/multi_or.rs crates/protocols/src/pointer_chase.rs crates/protocols/src/roll_call.rs

crates/protocols/src/lib.rs:
crates/protocols/src/broadcast.rs:
crates/protocols/src/census.rs:
crates/protocols/src/combinators.rs:
crates/protocols/src/firefly.rs:
crates/protocols/src/input_set.rs:
crates/protocols/src/leader.rs:
crates/protocols/src/membership.rs:
crates/protocols/src/multi_or.rs:
crates/protocols/src/pointer_chase.rs:
crates/protocols/src/roll_call.rs:
