/root/repo/target/debug/deps/fig6_phase_breakdown-ecd196e6e6c68615.d: crates/bench/src/bin/fig6_phase_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_phase_breakdown-ecd196e6e6c68615.rmeta: crates/bench/src/bin/fig6_phase_breakdown.rs Cargo.toml

crates/bench/src/bin/fig6_phase_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
