/root/repo/target/debug/deps/proptests-9d948d147303f475.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9d948d147303f475: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
