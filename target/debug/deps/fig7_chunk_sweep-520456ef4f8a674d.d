/root/repo/target/debug/deps/fig7_chunk_sweep-520456ef4f8a674d.d: crates/bench/src/bin/fig7_chunk_sweep.rs

/root/repo/target/debug/deps/fig7_chunk_sweep-520456ef4f8a674d: crates/bench/src/bin/fig7_chunk_sweep.rs

crates/bench/src/bin/fig7_chunk_sweep.rs:
