/root/repo/target/debug/deps/tab3_feasible_sets-48da82f5d9d17f54.d: crates/bench/src/bin/tab3_feasible_sets.rs

/root/repo/target/debug/deps/tab3_feasible_sets-48da82f5d9d17f54: crates/bench/src/bin/tab3_feasible_sets.rs

crates/bench/src/bin/tab3_feasible_sets.rs:
