/root/repo/target/debug/deps/noisy_beeps-639ed12684fb6a6f.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libnoisy_beeps-639ed12684fb6a6f.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
