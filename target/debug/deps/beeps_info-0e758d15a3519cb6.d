/root/repo/target/debug/deps/beeps_info-0e758d15a3519cb6.d: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs

/root/repo/target/debug/deps/libbeeps_info-0e758d15a3519cb6.rlib: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs

/root/repo/target/debug/deps/libbeeps_info-0e758d15a3519cb6.rmeta: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs

crates/info/src/lib.rs:
crates/info/src/entropy.rs:
crates/info/src/lemmas.rs:
crates/info/src/stats.rs:
crates/info/src/tail.rs:
