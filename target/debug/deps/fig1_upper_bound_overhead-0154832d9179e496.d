/root/repo/target/debug/deps/fig1_upper_bound_overhead-0154832d9179e496.d: crates/bench/src/bin/fig1_upper_bound_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_upper_bound_overhead-0154832d9179e496.rmeta: crates/bench/src/bin/fig1_upper_bound_overhead.rs Cargo.toml

crates/bench/src/bin/fig1_upper_bound_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
