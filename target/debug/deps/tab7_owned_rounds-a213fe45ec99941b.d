/root/repo/target/debug/deps/tab7_owned_rounds-a213fe45ec99941b.d: crates/bench/src/bin/tab7_owned_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libtab7_owned_rounds-a213fe45ec99941b.rmeta: crates/bench/src/bin/tab7_owned_rounds.rs Cargo.toml

crates/bench/src/bin/tab7_owned_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
