/root/repo/target/debug/deps/engine-73e7e8a34154982b.d: crates/bench/tests/engine.rs

/root/repo/target/debug/deps/engine-73e7e8a34154982b: crates/bench/tests/engine.rs

crates/bench/tests/engine.rs:
