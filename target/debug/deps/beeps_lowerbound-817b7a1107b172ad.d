/root/repo/target/debug/deps/beeps_lowerbound-817b7a1107b172ad.d: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs Cargo.toml

/root/repo/target/debug/deps/libbeeps_lowerbound-817b7a1107b172ad.rmeta: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs Cargo.toml

crates/lowerbound/src/lib.rs:
crates/lowerbound/src/crossover.rs:
crates/lowerbound/src/theorem_c3.rs:
crates/lowerbound/src/zeta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
