/root/repo/target/debug/deps/fig2_lower_bound_crossover-952a045eea952bbd.d: crates/bench/src/bin/fig2_lower_bound_crossover.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_lower_bound_crossover-952a045eea952bbd.rmeta: crates/bench/src/bin/fig2_lower_bound_crossover.rs Cargo.toml

crates/bench/src/bin/fig2_lower_bound_crossover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
