/root/repo/target/debug/deps/tab1_owners_phase-6300199fd461c8fa.d: crates/bench/src/bin/tab1_owners_phase.rs

/root/repo/target/debug/deps/tab1_owners_phase-6300199fd461c8fa: crates/bench/src/bin/tab1_owners_phase.rs

crates/bench/src/bin/tab1_owners_phase.rs:
