/root/repo/target/debug/deps/fig4_zeta_progress_measure-0c7349fc6664f5fd.d: crates/bench/src/bin/fig4_zeta_progress_measure.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_zeta_progress_measure-0c7349fc6664f5fd.rmeta: crates/bench/src/bin/fig4_zeta_progress_measure.rs Cargo.toml

crates/bench/src/bin/fig4_zeta_progress_measure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
