/root/repo/target/debug/deps/beeps_info-5c34ddc82fc98e56.d: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs Cargo.toml

/root/repo/target/debug/deps/libbeeps_info-5c34ddc82fc98e56.rmeta: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs Cargo.toml

crates/info/src/lib.rs:
crates/info/src/entropy.rs:
crates/info/src/lemmas.rs:
crates/info/src/stats.rs:
crates/info/src/tail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
