/root/repo/target/debug/deps/stress-ba87386810d5223d.d: tests/stress.rs

/root/repo/target/debug/deps/stress-ba87386810d5223d: tests/stress.rs

tests/stress.rs:
