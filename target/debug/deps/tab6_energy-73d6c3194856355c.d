/root/repo/target/debug/deps/tab6_energy-73d6c3194856355c.d: crates/bench/src/bin/tab6_energy.rs

/root/repo/target/debug/deps/tab6_energy-73d6c3194856355c: crates/bench/src/bin/tab6_energy.rs

crates/bench/src/bin/tab6_energy.rs:
