/root/repo/target/debug/deps/tab6_energy-70b6c97a9c8ab3ec.d: crates/bench/src/bin/tab6_energy.rs

/root/repo/target/debug/deps/tab6_energy-70b6c97a9c8ab3ec: crates/bench/src/bin/tab6_energy.rs

crates/bench/src/bin/tab6_energy.rs:
