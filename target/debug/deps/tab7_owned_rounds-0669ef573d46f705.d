/root/repo/target/debug/deps/tab7_owned_rounds-0669ef573d46f705.d: crates/bench/src/bin/tab7_owned_rounds.rs

/root/repo/target/debug/deps/tab7_owned_rounds-0669ef573d46f705: crates/bench/src/bin/tab7_owned_rounds.rs

crates/bench/src/bin/tab7_owned_rounds.rs:
