/root/repo/target/debug/deps/beeps_bench-0c0bdde11d150be9.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libbeeps_bench-0c0bdde11d150be9.rmeta: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
