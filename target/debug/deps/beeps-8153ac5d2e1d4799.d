/root/repo/target/debug/deps/beeps-8153ac5d2e1d4799.d: src/bin/beeps.rs

/root/repo/target/debug/deps/beeps-8153ac5d2e1d4799: src/bin/beeps.rs

src/bin/beeps.rs:
