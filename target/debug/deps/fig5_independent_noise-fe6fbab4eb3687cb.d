/root/repo/target/debug/deps/fig5_independent_noise-fe6fbab4eb3687cb.d: crates/bench/src/bin/fig5_independent_noise.rs

/root/repo/target/debug/deps/fig5_independent_noise-fe6fbab4eb3687cb: crates/bench/src/bin/fig5_independent_noise.rs

crates/bench/src/bin/fig5_independent_noise.rs:
