/root/repo/target/debug/deps/tab4_repetition_scheme-093e40142698713e.d: crates/bench/src/bin/tab4_repetition_scheme.rs

/root/repo/target/debug/deps/tab4_repetition_scheme-093e40142698713e: crates/bench/src/bin/tab4_repetition_scheme.rs

crates/bench/src/bin/tab4_repetition_scheme.rs:
