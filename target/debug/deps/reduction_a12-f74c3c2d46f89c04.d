/root/repo/target/debug/deps/reduction_a12-f74c3c2d46f89c04.d: tests/reduction_a12.rs

/root/repo/target/debug/deps/reduction_a12-f74c3c2d46f89c04: tests/reduction_a12.rs

tests/reduction_a12.rs:
