/root/repo/target/debug/deps/beeps-3061e55d7aadff81.d: src/bin/beeps.rs

/root/repo/target/debug/deps/beeps-3061e55d7aadff81: src/bin/beeps.rs

src/bin/beeps.rs:
