/root/repo/target/debug/deps/fig6_phase_breakdown-72e3d928a3f1ab0b.d: crates/bench/src/bin/fig6_phase_breakdown.rs

/root/repo/target/debug/deps/fig6_phase_breakdown-72e3d928a3f1ab0b: crates/bench/src/bin/fig6_phase_breakdown.rs

crates/bench/src/bin/fig6_phase_breakdown.rs:
