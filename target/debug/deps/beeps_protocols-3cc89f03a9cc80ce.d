/root/repo/target/debug/deps/beeps_protocols-3cc89f03a9cc80ce.d: crates/protocols/src/lib.rs crates/protocols/src/broadcast.rs crates/protocols/src/census.rs crates/protocols/src/combinators.rs crates/protocols/src/firefly.rs crates/protocols/src/input_set.rs crates/protocols/src/leader.rs crates/protocols/src/membership.rs crates/protocols/src/multi_or.rs crates/protocols/src/pointer_chase.rs crates/protocols/src/roll_call.rs

/root/repo/target/debug/deps/beeps_protocols-3cc89f03a9cc80ce: crates/protocols/src/lib.rs crates/protocols/src/broadcast.rs crates/protocols/src/census.rs crates/protocols/src/combinators.rs crates/protocols/src/firefly.rs crates/protocols/src/input_set.rs crates/protocols/src/leader.rs crates/protocols/src/membership.rs crates/protocols/src/multi_or.rs crates/protocols/src/pointer_chase.rs crates/protocols/src/roll_call.rs

crates/protocols/src/lib.rs:
crates/protocols/src/broadcast.rs:
crates/protocols/src/census.rs:
crates/protocols/src/combinators.rs:
crates/protocols/src/firefly.rs:
crates/protocols/src/input_set.rs:
crates/protocols/src/leader.rs:
crates/protocols/src/membership.rs:
crates/protocols/src/multi_or.rs:
crates/protocols/src/pointer_chase.rs:
crates/protocols/src/roll_call.rs:
