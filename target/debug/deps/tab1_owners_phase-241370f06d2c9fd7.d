/root/repo/target/debug/deps/tab1_owners_phase-241370f06d2c9fd7.d: crates/bench/src/bin/tab1_owners_phase.rs

/root/repo/target/debug/deps/tab1_owners_phase-241370f06d2c9fd7: crates/bench/src/bin/tab1_owners_phase.rs

crates/bench/src/bin/tab1_owners_phase.rs:
