/root/repo/target/debug/deps/proptests-b319e352a64c39bd.d: crates/protocols/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b319e352a64c39bd: crates/protocols/tests/proptests.rs

crates/protocols/tests/proptests.rs:
