/root/repo/target/debug/deps/all_experiments-b710a336384f2e2a.d: crates/bench/src/bin/all_experiments.rs crates/bench/src/bin/fig1_upper_bound_overhead.rs crates/bench/src/bin/fig2_lower_bound_crossover.rs crates/bench/src/bin/fig3_noise_asymmetry.rs crates/bench/src/bin/fig4_zeta_progress_measure.rs crates/bench/src/bin/fig5_independent_noise.rs crates/bench/src/bin/fig6_phase_breakdown.rs crates/bench/src/bin/fig7_chunk_sweep.rs crates/bench/src/bin/tab1_owners_phase.rs crates/bench/src/bin/tab2_one_sided_reduction.rs crates/bench/src/bin/tab3_feasible_sets.rs crates/bench/src/bin/tab4_repetition_scheme.rs crates/bench/src/bin/tab5_scheme_ablation.rs crates/bench/src/bin/tab6_energy.rs crates/bench/src/bin/tab7_owned_rounds.rs

/root/repo/target/debug/deps/all_experiments-b710a336384f2e2a: crates/bench/src/bin/all_experiments.rs crates/bench/src/bin/fig1_upper_bound_overhead.rs crates/bench/src/bin/fig2_lower_bound_crossover.rs crates/bench/src/bin/fig3_noise_asymmetry.rs crates/bench/src/bin/fig4_zeta_progress_measure.rs crates/bench/src/bin/fig5_independent_noise.rs crates/bench/src/bin/fig6_phase_breakdown.rs crates/bench/src/bin/fig7_chunk_sweep.rs crates/bench/src/bin/tab1_owners_phase.rs crates/bench/src/bin/tab2_one_sided_reduction.rs crates/bench/src/bin/tab3_feasible_sets.rs crates/bench/src/bin/tab4_repetition_scheme.rs crates/bench/src/bin/tab5_scheme_ablation.rs crates/bench/src/bin/tab6_energy.rs crates/bench/src/bin/tab7_owned_rounds.rs

crates/bench/src/bin/all_experiments.rs:
crates/bench/src/bin/fig1_upper_bound_overhead.rs:
crates/bench/src/bin/fig2_lower_bound_crossover.rs:
crates/bench/src/bin/fig3_noise_asymmetry.rs:
crates/bench/src/bin/fig4_zeta_progress_measure.rs:
crates/bench/src/bin/fig5_independent_noise.rs:
crates/bench/src/bin/fig6_phase_breakdown.rs:
crates/bench/src/bin/fig7_chunk_sweep.rs:
crates/bench/src/bin/tab1_owners_phase.rs:
crates/bench/src/bin/tab2_one_sided_reduction.rs:
crates/bench/src/bin/tab3_feasible_sets.rs:
crates/bench/src/bin/tab4_repetition_scheme.rs:
crates/bench/src/bin/tab5_scheme_ablation.rs:
crates/bench/src/bin/tab6_energy.rs:
crates/bench/src/bin/tab7_owned_rounds.rs:
