/root/repo/target/debug/deps/extensions-24e15b8476c67e6a.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-24e15b8476c67e6a: tests/extensions.rs

tests/extensions.rs:
