/root/repo/target/debug/deps/end_to_end-7ff5b539f8d9a0e5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7ff5b539f8d9a0e5: tests/end_to_end.rs

tests/end_to_end.rs:
