/root/repo/target/debug/deps/beeps_ecc-87e99613d3a8b96d.d: crates/ecc/src/lib.rs crates/ecc/src/bits.rs crates/ecc/src/concat.rs crates/ecc/src/constant_weight.rs crates/ecc/src/gf.rs crates/ecc/src/hadamard.rs crates/ecc/src/random_code.rs crates/ecc/src/repetition.rs crates/ecc/src/rs.rs

/root/repo/target/debug/deps/beeps_ecc-87e99613d3a8b96d: crates/ecc/src/lib.rs crates/ecc/src/bits.rs crates/ecc/src/concat.rs crates/ecc/src/constant_weight.rs crates/ecc/src/gf.rs crates/ecc/src/hadamard.rs crates/ecc/src/random_code.rs crates/ecc/src/repetition.rs crates/ecc/src/rs.rs

crates/ecc/src/lib.rs:
crates/ecc/src/bits.rs:
crates/ecc/src/concat.rs:
crates/ecc/src/constant_weight.rs:
crates/ecc/src/gf.rs:
crates/ecc/src/hadamard.rs:
crates/ecc/src/random_code.rs:
crates/ecc/src/repetition.rs:
crates/ecc/src/rs.rs:
