/root/repo/target/debug/deps/fig3_noise_asymmetry-85d606ee11184ae1.d: crates/bench/src/bin/fig3_noise_asymmetry.rs

/root/repo/target/debug/deps/fig3_noise_asymmetry-85d606ee11184ae1: crates/bench/src/bin/fig3_noise_asymmetry.rs

crates/bench/src/bin/fig3_noise_asymmetry.rs:
