/root/repo/target/debug/deps/beeps_ecc-14ff1b5d2125256e.d: crates/ecc/src/lib.rs crates/ecc/src/bits.rs crates/ecc/src/concat.rs crates/ecc/src/constant_weight.rs crates/ecc/src/gf.rs crates/ecc/src/hadamard.rs crates/ecc/src/random_code.rs crates/ecc/src/repetition.rs crates/ecc/src/rs.rs Cargo.toml

/root/repo/target/debug/deps/libbeeps_ecc-14ff1b5d2125256e.rmeta: crates/ecc/src/lib.rs crates/ecc/src/bits.rs crates/ecc/src/concat.rs crates/ecc/src/constant_weight.rs crates/ecc/src/gf.rs crates/ecc/src/hadamard.rs crates/ecc/src/random_code.rs crates/ecc/src/repetition.rs crates/ecc/src/rs.rs Cargo.toml

crates/ecc/src/lib.rs:
crates/ecc/src/bits.rs:
crates/ecc/src/concat.rs:
crates/ecc/src/constant_weight.rs:
crates/ecc/src/gf.rs:
crates/ecc/src/hadamard.rs:
crates/ecc/src/random_code.rs:
crates/ecc/src/repetition.rs:
crates/ecc/src/rs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
