/root/repo/target/debug/deps/fig4_zeta_progress_measure-59644248e248adbd.d: crates/bench/src/bin/fig4_zeta_progress_measure.rs

/root/repo/target/debug/deps/fig4_zeta_progress_measure-59644248e248adbd: crates/bench/src/bin/fig4_zeta_progress_measure.rs

crates/bench/src/bin/fig4_zeta_progress_measure.rs:
