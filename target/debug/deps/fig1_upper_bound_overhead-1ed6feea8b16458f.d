/root/repo/target/debug/deps/fig1_upper_bound_overhead-1ed6feea8b16458f.d: crates/bench/src/bin/fig1_upper_bound_overhead.rs

/root/repo/target/debug/deps/fig1_upper_bound_overhead-1ed6feea8b16458f: crates/bench/src/bin/fig1_upper_bound_overhead.rs

crates/bench/src/bin/fig1_upper_bound_overhead.rs:
