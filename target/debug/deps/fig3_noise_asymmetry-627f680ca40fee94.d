/root/repo/target/debug/deps/fig3_noise_asymmetry-627f680ca40fee94.d: crates/bench/src/bin/fig3_noise_asymmetry.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_noise_asymmetry-627f680ca40fee94.rmeta: crates/bench/src/bin/fig3_noise_asymmetry.rs Cargo.toml

crates/bench/src/bin/fig3_noise_asymmetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
