/root/repo/target/debug/deps/tab2_one_sided_reduction-e4baaf16712aaa68.d: crates/bench/src/bin/tab2_one_sided_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libtab2_one_sided_reduction-e4baaf16712aaa68.rmeta: crates/bench/src/bin/tab2_one_sided_reduction.rs Cargo.toml

crates/bench/src/bin/tab2_one_sided_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
