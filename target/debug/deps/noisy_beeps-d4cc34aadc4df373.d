/root/repo/target/debug/deps/noisy_beeps-d4cc34aadc4df373.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libnoisy_beeps-d4cc34aadc4df373.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libnoisy_beeps-d4cc34aadc4df373.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
