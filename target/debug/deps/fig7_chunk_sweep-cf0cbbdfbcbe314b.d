/root/repo/target/debug/deps/fig7_chunk_sweep-cf0cbbdfbcbe314b.d: crates/bench/src/bin/fig7_chunk_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_chunk_sweep-cf0cbbdfbcbe314b.rmeta: crates/bench/src/bin/fig7_chunk_sweep.rs Cargo.toml

crates/bench/src/bin/fig7_chunk_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
