/root/repo/target/debug/deps/fig4_zeta_progress_measure-fd3053399b1ab41f.d: crates/bench/src/bin/fig4_zeta_progress_measure.rs

/root/repo/target/debug/deps/fig4_zeta_progress_measure-fd3053399b1ab41f: crates/bench/src/bin/fig4_zeta_progress_measure.rs

crates/bench/src/bin/fig4_zeta_progress_measure.rs:
