/root/repo/target/debug/deps/beeps_ecc-4a3756af8ae5cb17.d: crates/ecc/src/lib.rs crates/ecc/src/bits.rs crates/ecc/src/concat.rs crates/ecc/src/constant_weight.rs crates/ecc/src/gf.rs crates/ecc/src/hadamard.rs crates/ecc/src/random_code.rs crates/ecc/src/repetition.rs crates/ecc/src/rs.rs

/root/repo/target/debug/deps/libbeeps_ecc-4a3756af8ae5cb17.rlib: crates/ecc/src/lib.rs crates/ecc/src/bits.rs crates/ecc/src/concat.rs crates/ecc/src/constant_weight.rs crates/ecc/src/gf.rs crates/ecc/src/hadamard.rs crates/ecc/src/random_code.rs crates/ecc/src/repetition.rs crates/ecc/src/rs.rs

/root/repo/target/debug/deps/libbeeps_ecc-4a3756af8ae5cb17.rmeta: crates/ecc/src/lib.rs crates/ecc/src/bits.rs crates/ecc/src/concat.rs crates/ecc/src/constant_weight.rs crates/ecc/src/gf.rs crates/ecc/src/hadamard.rs crates/ecc/src/random_code.rs crates/ecc/src/repetition.rs crates/ecc/src/rs.rs

crates/ecc/src/lib.rs:
crates/ecc/src/bits.rs:
crates/ecc/src/concat.rs:
crates/ecc/src/constant_weight.rs:
crates/ecc/src/gf.rs:
crates/ecc/src/hadamard.rs:
crates/ecc/src/random_code.rs:
crates/ecc/src/repetition.rs:
crates/ecc/src/rs.rs:
