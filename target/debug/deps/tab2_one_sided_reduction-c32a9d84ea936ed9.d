/root/repo/target/debug/deps/tab2_one_sided_reduction-c32a9d84ea936ed9.d: crates/bench/src/bin/tab2_one_sided_reduction.rs

/root/repo/target/debug/deps/tab2_one_sided_reduction-c32a9d84ea936ed9: crates/bench/src/bin/tab2_one_sided_reduction.rs

crates/bench/src/bin/tab2_one_sided_reduction.rs:
