/root/repo/target/debug/deps/tab3_feasible_sets-7ceb12772ac6c75a.d: crates/bench/src/bin/tab3_feasible_sets.rs Cargo.toml

/root/repo/target/debug/deps/libtab3_feasible_sets-7ceb12772ac6c75a.rmeta: crates/bench/src/bin/tab3_feasible_sets.rs Cargo.toml

crates/bench/src/bin/tab3_feasible_sets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
