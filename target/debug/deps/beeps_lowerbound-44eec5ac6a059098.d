/root/repo/target/debug/deps/beeps_lowerbound-44eec5ac6a059098.d: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs

/root/repo/target/debug/deps/beeps_lowerbound-44eec5ac6a059098: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs

crates/lowerbound/src/lib.rs:
crates/lowerbound/src/crossover.rs:
crates/lowerbound/src/theorem_c3.rs:
crates/lowerbound/src/zeta.rs:
