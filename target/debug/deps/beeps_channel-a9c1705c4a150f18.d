/root/repo/target/debug/deps/beeps_channel-a9c1705c4a150f18.d: crates/channel/src/lib.rs crates/channel/src/adversary.rs crates/channel/src/burst.rs crates/channel/src/channel.rs crates/channel/src/executor.rs crates/channel/src/multiplication.rs crates/channel/src/noise.rs crates/channel/src/protocol.rs crates/channel/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbeeps_channel-a9c1705c4a150f18.rmeta: crates/channel/src/lib.rs crates/channel/src/adversary.rs crates/channel/src/burst.rs crates/channel/src/channel.rs crates/channel/src/executor.rs crates/channel/src/multiplication.rs crates/channel/src/noise.rs crates/channel/src/protocol.rs crates/channel/src/trace.rs Cargo.toml

crates/channel/src/lib.rs:
crates/channel/src/adversary.rs:
crates/channel/src/burst.rs:
crates/channel/src/channel.rs:
crates/channel/src/executor.rs:
crates/channel/src/multiplication.rs:
crates/channel/src/noise.rs:
crates/channel/src/protocol.rs:
crates/channel/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
