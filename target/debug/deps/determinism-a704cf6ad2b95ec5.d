/root/repo/target/debug/deps/determinism-a704cf6ad2b95ec5.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-a704cf6ad2b95ec5: tests/determinism.rs

tests/determinism.rs:
