/root/repo/target/debug/deps/proptests-1f8b83f7dec27d44.d: crates/info/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1f8b83f7dec27d44: crates/info/tests/proptests.rs

crates/info/tests/proptests.rs:
