/root/repo/target/debug/deps/failure_injection-7214579594d05018.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-7214579594d05018: tests/failure_injection.rs

tests/failure_injection.rs:
