/root/repo/target/debug/deps/proptests-4f12d66ce1752c94.d: crates/channel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4f12d66ce1752c94: crates/channel/tests/proptests.rs

crates/channel/tests/proptests.rs:
