/root/repo/target/debug/deps/beeps_channel-78b1dd2eb51fc42e.d: crates/channel/src/lib.rs crates/channel/src/adversary.rs crates/channel/src/burst.rs crates/channel/src/channel.rs crates/channel/src/executor.rs crates/channel/src/multiplication.rs crates/channel/src/noise.rs crates/channel/src/protocol.rs crates/channel/src/trace.rs

/root/repo/target/debug/deps/beeps_channel-78b1dd2eb51fc42e: crates/channel/src/lib.rs crates/channel/src/adversary.rs crates/channel/src/burst.rs crates/channel/src/channel.rs crates/channel/src/executor.rs crates/channel/src/multiplication.rs crates/channel/src/noise.rs crates/channel/src/protocol.rs crates/channel/src/trace.rs

crates/channel/src/lib.rs:
crates/channel/src/adversary.rs:
crates/channel/src/burst.rs:
crates/channel/src/channel.rs:
crates/channel/src/executor.rs:
crates/channel/src/multiplication.rs:
crates/channel/src/noise.rs:
crates/channel/src/protocol.rs:
crates/channel/src/trace.rs:
