/root/repo/target/debug/deps/beeps_bench-e5e98c351bb41d25.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/beeps_bench-e5e98c351bb41d25: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/runner.rs:
