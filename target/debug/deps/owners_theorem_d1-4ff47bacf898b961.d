/root/repo/target/debug/deps/owners_theorem_d1-4ff47bacf898b961.d: tests/owners_theorem_d1.rs

/root/repo/target/debug/deps/owners_theorem_d1-4ff47bacf898b961: tests/owners_theorem_d1.rs

tests/owners_theorem_d1.rs:
