/root/repo/target/debug/deps/beeps_info-4f70344b76ce8e6e.d: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs

/root/repo/target/debug/deps/beeps_info-4f70344b76ce8e6e: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs

crates/info/src/lib.rs:
crates/info/src/entropy.rs:
crates/info/src/lemmas.rs:
crates/info/src/stats.rs:
crates/info/src/tail.rs:
