/root/repo/target/debug/deps/tab3_feasible_sets-0d95f7513ed53bae.d: crates/bench/src/bin/tab3_feasible_sets.rs

/root/repo/target/debug/deps/tab3_feasible_sets-0d95f7513ed53bae: crates/bench/src/bin/tab3_feasible_sets.rs

crates/bench/src/bin/tab3_feasible_sets.rs:
