/root/repo/target/debug/deps/tab4_repetition_scheme-d0d5008bfcb3f00f.d: crates/bench/src/bin/tab4_repetition_scheme.rs Cargo.toml

/root/repo/target/debug/deps/libtab4_repetition_scheme-d0d5008bfcb3f00f.rmeta: crates/bench/src/bin/tab4_repetition_scheme.rs Cargo.toml

crates/bench/src/bin/tab4_repetition_scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
