/root/repo/target/debug/deps/tab5_scheme_ablation-3e8204db2cf4cfe7.d: crates/bench/src/bin/tab5_scheme_ablation.rs

/root/repo/target/debug/deps/tab5_scheme_ablation-3e8204db2cf4cfe7: crates/bench/src/bin/tab5_scheme_ablation.rs

crates/bench/src/bin/tab5_scheme_ablation.rs:
