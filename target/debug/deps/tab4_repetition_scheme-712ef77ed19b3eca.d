/root/repo/target/debug/deps/tab4_repetition_scheme-712ef77ed19b3eca.d: crates/bench/src/bin/tab4_repetition_scheme.rs

/root/repo/target/debug/deps/tab4_repetition_scheme-712ef77ed19b3eca: crates/bench/src/bin/tab4_repetition_scheme.rs

crates/bench/src/bin/tab4_repetition_scheme.rs:
