/root/repo/target/debug/deps/fig2_lower_bound_crossover-97b0546cfdab41e7.d: crates/bench/src/bin/fig2_lower_bound_crossover.rs

/root/repo/target/debug/deps/fig2_lower_bound_crossover-97b0546cfdab41e7: crates/bench/src/bin/fig2_lower_bound_crossover.rs

crates/bench/src/bin/fig2_lower_bound_crossover.rs:
