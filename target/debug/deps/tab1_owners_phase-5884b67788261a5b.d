/root/repo/target/debug/deps/tab1_owners_phase-5884b67788261a5b.d: crates/bench/src/bin/tab1_owners_phase.rs Cargo.toml

/root/repo/target/debug/deps/libtab1_owners_phase-5884b67788261a5b.rmeta: crates/bench/src/bin/tab1_owners_phase.rs Cargo.toml

crates/bench/src/bin/tab1_owners_phase.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
