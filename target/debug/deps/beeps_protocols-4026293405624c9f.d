/root/repo/target/debug/deps/beeps_protocols-4026293405624c9f.d: crates/protocols/src/lib.rs crates/protocols/src/broadcast.rs crates/protocols/src/census.rs crates/protocols/src/combinators.rs crates/protocols/src/firefly.rs crates/protocols/src/input_set.rs crates/protocols/src/leader.rs crates/protocols/src/membership.rs crates/protocols/src/multi_or.rs crates/protocols/src/pointer_chase.rs crates/protocols/src/roll_call.rs Cargo.toml

/root/repo/target/debug/deps/libbeeps_protocols-4026293405624c9f.rmeta: crates/protocols/src/lib.rs crates/protocols/src/broadcast.rs crates/protocols/src/census.rs crates/protocols/src/combinators.rs crates/protocols/src/firefly.rs crates/protocols/src/input_set.rs crates/protocols/src/leader.rs crates/protocols/src/membership.rs crates/protocols/src/multi_or.rs crates/protocols/src/pointer_chase.rs crates/protocols/src/roll_call.rs Cargo.toml

crates/protocols/src/lib.rs:
crates/protocols/src/broadcast.rs:
crates/protocols/src/census.rs:
crates/protocols/src/combinators.rs:
crates/protocols/src/firefly.rs:
crates/protocols/src/input_set.rs:
crates/protocols/src/leader.rs:
crates/protocols/src/membership.rs:
crates/protocols/src/multi_or.rs:
crates/protocols/src/pointer_chase.rs:
crates/protocols/src/roll_call.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
