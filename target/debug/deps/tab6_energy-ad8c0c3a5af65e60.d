/root/repo/target/debug/deps/tab6_energy-ad8c0c3a5af65e60.d: crates/bench/src/bin/tab6_energy.rs Cargo.toml

/root/repo/target/debug/deps/libtab6_energy-ad8c0c3a5af65e60.rmeta: crates/bench/src/bin/tab6_energy.rs Cargo.toml

crates/bench/src/bin/tab6_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
