/root/repo/target/release/deps/tab5_scheme_ablation-8867af9e1ce6dcd1.d: crates/bench/src/bin/tab5_scheme_ablation.rs

/root/repo/target/release/deps/tab5_scheme_ablation-8867af9e1ce6dcd1: crates/bench/src/bin/tab5_scheme_ablation.rs

crates/bench/src/bin/tab5_scheme_ablation.rs:
