/root/repo/target/release/deps/failure_injection-21ea0dd68a0bf4cb.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-21ea0dd68a0bf4cb: tests/failure_injection.rs

tests/failure_injection.rs:
