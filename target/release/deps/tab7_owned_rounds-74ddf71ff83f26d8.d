/root/repo/target/release/deps/tab7_owned_rounds-74ddf71ff83f26d8.d: crates/bench/src/bin/tab7_owned_rounds.rs

/root/repo/target/release/deps/tab7_owned_rounds-74ddf71ff83f26d8: crates/bench/src/bin/tab7_owned_rounds.rs

crates/bench/src/bin/tab7_owned_rounds.rs:
