/root/repo/target/release/deps/tab5_scheme_ablation-96536fc3bee989c2.d: crates/bench/src/bin/tab5_scheme_ablation.rs

/root/repo/target/release/deps/tab5_scheme_ablation-96536fc3bee989c2: crates/bench/src/bin/tab5_scheme_ablation.rs

crates/bench/src/bin/tab5_scheme_ablation.rs:
