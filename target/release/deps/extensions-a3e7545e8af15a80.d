/root/repo/target/release/deps/extensions-a3e7545e8af15a80.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-a3e7545e8af15a80: tests/extensions.rs

tests/extensions.rs:
