/root/repo/target/release/deps/beeps_lowerbound-6690f5e28099b22c.d: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs

/root/repo/target/release/deps/beeps_lowerbound-6690f5e28099b22c: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs

crates/lowerbound/src/lib.rs:
crates/lowerbound/src/crossover.rs:
crates/lowerbound/src/theorem_c3.rs:
crates/lowerbound/src/zeta.rs:
