/root/repo/target/release/deps/tab2_one_sided_reduction-6034f80c91a29fb6.d: crates/bench/src/bin/tab2_one_sided_reduction.rs

/root/repo/target/release/deps/tab2_one_sided_reduction-6034f80c91a29fb6: crates/bench/src/bin/tab2_one_sided_reduction.rs

crates/bench/src/bin/tab2_one_sided_reduction.rs:
