/root/repo/target/release/deps/beeps_channel-33ae363ea3d7be57.d: crates/channel/src/lib.rs crates/channel/src/adversary.rs crates/channel/src/burst.rs crates/channel/src/channel.rs crates/channel/src/executor.rs crates/channel/src/multiplication.rs crates/channel/src/noise.rs crates/channel/src/protocol.rs crates/channel/src/trace.rs

/root/repo/target/release/deps/libbeeps_channel-33ae363ea3d7be57.rlib: crates/channel/src/lib.rs crates/channel/src/adversary.rs crates/channel/src/burst.rs crates/channel/src/channel.rs crates/channel/src/executor.rs crates/channel/src/multiplication.rs crates/channel/src/noise.rs crates/channel/src/protocol.rs crates/channel/src/trace.rs

/root/repo/target/release/deps/libbeeps_channel-33ae363ea3d7be57.rmeta: crates/channel/src/lib.rs crates/channel/src/adversary.rs crates/channel/src/burst.rs crates/channel/src/channel.rs crates/channel/src/executor.rs crates/channel/src/multiplication.rs crates/channel/src/noise.rs crates/channel/src/protocol.rs crates/channel/src/trace.rs

crates/channel/src/lib.rs:
crates/channel/src/adversary.rs:
crates/channel/src/burst.rs:
crates/channel/src/channel.rs:
crates/channel/src/executor.rs:
crates/channel/src/multiplication.rs:
crates/channel/src/noise.rs:
crates/channel/src/protocol.rs:
crates/channel/src/trace.rs:
