/root/repo/target/release/deps/fig7_chunk_sweep-48504d9d0cf329ee.d: crates/bench/src/bin/fig7_chunk_sweep.rs

/root/repo/target/release/deps/fig7_chunk_sweep-48504d9d0cf329ee: crates/bench/src/bin/fig7_chunk_sweep.rs

crates/bench/src/bin/fig7_chunk_sweep.rs:
