/root/repo/target/release/deps/beeps_lowerbound-0f46397143252a3d.d: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs

/root/repo/target/release/deps/libbeeps_lowerbound-0f46397143252a3d.rlib: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs

/root/repo/target/release/deps/libbeeps_lowerbound-0f46397143252a3d.rmeta: crates/lowerbound/src/lib.rs crates/lowerbound/src/crossover.rs crates/lowerbound/src/theorem_c3.rs crates/lowerbound/src/zeta.rs

crates/lowerbound/src/lib.rs:
crates/lowerbound/src/crossover.rs:
crates/lowerbound/src/theorem_c3.rs:
crates/lowerbound/src/zeta.rs:
