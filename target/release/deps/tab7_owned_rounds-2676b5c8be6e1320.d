/root/repo/target/release/deps/tab7_owned_rounds-2676b5c8be6e1320.d: crates/bench/src/bin/tab7_owned_rounds.rs

/root/repo/target/release/deps/tab7_owned_rounds-2676b5c8be6e1320: crates/bench/src/bin/tab7_owned_rounds.rs

crates/bench/src/bin/tab7_owned_rounds.rs:
