/root/repo/target/release/deps/beeps-f9bb76bb36777439.d: src/bin/beeps.rs

/root/repo/target/release/deps/beeps-f9bb76bb36777439: src/bin/beeps.rs

src/bin/beeps.rs:
