/root/repo/target/release/deps/tab4_repetition_scheme-bb0f8558ea50c42b.d: crates/bench/src/bin/tab4_repetition_scheme.rs

/root/repo/target/release/deps/tab4_repetition_scheme-bb0f8558ea50c42b: crates/bench/src/bin/tab4_repetition_scheme.rs

crates/bench/src/bin/tab4_repetition_scheme.rs:
