/root/repo/target/release/deps/fig3_noise_asymmetry-f7022f82633ef5e2.d: crates/bench/src/bin/fig3_noise_asymmetry.rs

/root/repo/target/release/deps/fig3_noise_asymmetry-f7022f82633ef5e2: crates/bench/src/bin/fig3_noise_asymmetry.rs

crates/bench/src/bin/fig3_noise_asymmetry.rs:
