/root/repo/target/release/deps/fig5_independent_noise-37f28332e3b1d64f.d: crates/bench/src/bin/fig5_independent_noise.rs

/root/repo/target/release/deps/fig5_independent_noise-37f28332e3b1d64f: crates/bench/src/bin/fig5_independent_noise.rs

crates/bench/src/bin/fig5_independent_noise.rs:
