/root/repo/target/release/deps/beeps_bench-74b880b368f37104.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libbeeps_bench-74b880b368f37104.rlib: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libbeeps_bench-74b880b368f37104.rmeta: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/runner.rs:
