/root/repo/target/release/deps/fig2_lower_bound_crossover-a2f4f759a09a2443.d: crates/bench/src/bin/fig2_lower_bound_crossover.rs

/root/repo/target/release/deps/fig2_lower_bound_crossover-a2f4f759a09a2443: crates/bench/src/bin/fig2_lower_bound_crossover.rs

crates/bench/src/bin/fig2_lower_bound_crossover.rs:
