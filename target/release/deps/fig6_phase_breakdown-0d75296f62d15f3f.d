/root/repo/target/release/deps/fig6_phase_breakdown-0d75296f62d15f3f.d: crates/bench/src/bin/fig6_phase_breakdown.rs

/root/repo/target/release/deps/fig6_phase_breakdown-0d75296f62d15f3f: crates/bench/src/bin/fig6_phase_breakdown.rs

crates/bench/src/bin/fig6_phase_breakdown.rs:
