/root/repo/target/release/deps/noisy_beeps-c22ebb383a068cae.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libnoisy_beeps-c22ebb383a068cae.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libnoisy_beeps-c22ebb383a068cae.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
