/root/repo/target/release/deps/fig5_independent_noise-8d0d57a8d169ce5c.d: crates/bench/src/bin/fig5_independent_noise.rs

/root/repo/target/release/deps/fig5_independent_noise-8d0d57a8d169ce5c: crates/bench/src/bin/fig5_independent_noise.rs

crates/bench/src/bin/fig5_independent_noise.rs:
