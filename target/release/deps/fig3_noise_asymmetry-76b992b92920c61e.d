/root/repo/target/release/deps/fig3_noise_asymmetry-76b992b92920c61e.d: crates/bench/src/bin/fig3_noise_asymmetry.rs

/root/repo/target/release/deps/fig3_noise_asymmetry-76b992b92920c61e: crates/bench/src/bin/fig3_noise_asymmetry.rs

crates/bench/src/bin/fig3_noise_asymmetry.rs:
