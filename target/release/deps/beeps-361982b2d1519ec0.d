/root/repo/target/release/deps/beeps-361982b2d1519ec0.d: src/bin/beeps.rs

/root/repo/target/release/deps/beeps-361982b2d1519ec0: src/bin/beeps.rs

src/bin/beeps.rs:
