/root/repo/target/release/deps/reduction_a12-40e2e92b6b14c6bc.d: tests/reduction_a12.rs

/root/repo/target/release/deps/reduction_a12-40e2e92b6b14c6bc: tests/reduction_a12.rs

tests/reduction_a12.rs:
