/root/repo/target/release/deps/proptests-9625377b96982fe9.d: crates/protocols/tests/proptests.rs

/root/repo/target/release/deps/proptests-9625377b96982fe9: crates/protocols/tests/proptests.rs

crates/protocols/tests/proptests.rs:
