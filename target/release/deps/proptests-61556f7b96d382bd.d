/root/repo/target/release/deps/proptests-61556f7b96d382bd.d: crates/info/tests/proptests.rs

/root/repo/target/release/deps/proptests-61556f7b96d382bd: crates/info/tests/proptests.rs

crates/info/tests/proptests.rs:
