/root/repo/target/release/deps/tab3_feasible_sets-60d39ececd7a1de0.d: crates/bench/src/bin/tab3_feasible_sets.rs

/root/repo/target/release/deps/tab3_feasible_sets-60d39ececd7a1de0: crates/bench/src/bin/tab3_feasible_sets.rs

crates/bench/src/bin/tab3_feasible_sets.rs:
