/root/repo/target/release/deps/end_to_end-4dcb358ba57bbff7.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-4dcb358ba57bbff7: tests/end_to_end.rs

tests/end_to_end.rs:
