/root/repo/target/release/deps/beeps_info-1dd76faef2b4ed69.d: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs

/root/repo/target/release/deps/libbeeps_info-1dd76faef2b4ed69.rlib: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs

/root/repo/target/release/deps/libbeeps_info-1dd76faef2b4ed69.rmeta: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs

crates/info/src/lib.rs:
crates/info/src/entropy.rs:
crates/info/src/lemmas.rs:
crates/info/src/stats.rs:
crates/info/src/tail.rs:
