/root/repo/target/release/deps/tab1_owners_phase-a58154d99520385a.d: crates/bench/src/bin/tab1_owners_phase.rs

/root/repo/target/release/deps/tab1_owners_phase-a58154d99520385a: crates/bench/src/bin/tab1_owners_phase.rs

crates/bench/src/bin/tab1_owners_phase.rs:
