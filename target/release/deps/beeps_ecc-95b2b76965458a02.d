/root/repo/target/release/deps/beeps_ecc-95b2b76965458a02.d: crates/ecc/src/lib.rs crates/ecc/src/bits.rs crates/ecc/src/concat.rs crates/ecc/src/constant_weight.rs crates/ecc/src/gf.rs crates/ecc/src/hadamard.rs crates/ecc/src/random_code.rs crates/ecc/src/repetition.rs crates/ecc/src/rs.rs

/root/repo/target/release/deps/beeps_ecc-95b2b76965458a02: crates/ecc/src/lib.rs crates/ecc/src/bits.rs crates/ecc/src/concat.rs crates/ecc/src/constant_weight.rs crates/ecc/src/gf.rs crates/ecc/src/hadamard.rs crates/ecc/src/random_code.rs crates/ecc/src/repetition.rs crates/ecc/src/rs.rs

crates/ecc/src/lib.rs:
crates/ecc/src/bits.rs:
crates/ecc/src/concat.rs:
crates/ecc/src/constant_weight.rs:
crates/ecc/src/gf.rs:
crates/ecc/src/hadamard.rs:
crates/ecc/src/random_code.rs:
crates/ecc/src/repetition.rs:
crates/ecc/src/rs.rs:
