/root/repo/target/release/deps/fig1_upper_bound_overhead-6a2046a1eee7b6aa.d: crates/bench/src/bin/fig1_upper_bound_overhead.rs

/root/repo/target/release/deps/fig1_upper_bound_overhead-6a2046a1eee7b6aa: crates/bench/src/bin/fig1_upper_bound_overhead.rs

crates/bench/src/bin/fig1_upper_bound_overhead.rs:
