/root/repo/target/release/deps/proptests-63524d1dca6ec92c.d: crates/channel/tests/proptests.rs

/root/repo/target/release/deps/proptests-63524d1dca6ec92c: crates/channel/tests/proptests.rs

crates/channel/tests/proptests.rs:
