/root/repo/target/release/deps/beeps_info-565ac728ab37ffff.d: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs

/root/repo/target/release/deps/beeps_info-565ac728ab37ffff: crates/info/src/lib.rs crates/info/src/entropy.rs crates/info/src/lemmas.rs crates/info/src/stats.rs crates/info/src/tail.rs

crates/info/src/lib.rs:
crates/info/src/entropy.rs:
crates/info/src/lemmas.rs:
crates/info/src/stats.rs:
crates/info/src/tail.rs:
