/root/repo/target/release/deps/fig6_phase_breakdown-e2ac130358a7227e.d: crates/bench/src/bin/fig6_phase_breakdown.rs

/root/repo/target/release/deps/fig6_phase_breakdown-e2ac130358a7227e: crates/bench/src/bin/fig6_phase_breakdown.rs

crates/bench/src/bin/fig6_phase_breakdown.rs:
