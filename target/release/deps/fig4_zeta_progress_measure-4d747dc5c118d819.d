/root/repo/target/release/deps/fig4_zeta_progress_measure-4d747dc5c118d819.d: crates/bench/src/bin/fig4_zeta_progress_measure.rs

/root/repo/target/release/deps/fig4_zeta_progress_measure-4d747dc5c118d819: crates/bench/src/bin/fig4_zeta_progress_measure.rs

crates/bench/src/bin/fig4_zeta_progress_measure.rs:
