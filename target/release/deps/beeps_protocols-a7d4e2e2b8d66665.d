/root/repo/target/release/deps/beeps_protocols-a7d4e2e2b8d66665.d: crates/protocols/src/lib.rs crates/protocols/src/broadcast.rs crates/protocols/src/census.rs crates/protocols/src/combinators.rs crates/protocols/src/firefly.rs crates/protocols/src/input_set.rs crates/protocols/src/leader.rs crates/protocols/src/membership.rs crates/protocols/src/multi_or.rs crates/protocols/src/pointer_chase.rs crates/protocols/src/roll_call.rs

/root/repo/target/release/deps/beeps_protocols-a7d4e2e2b8d66665: crates/protocols/src/lib.rs crates/protocols/src/broadcast.rs crates/protocols/src/census.rs crates/protocols/src/combinators.rs crates/protocols/src/firefly.rs crates/protocols/src/input_set.rs crates/protocols/src/leader.rs crates/protocols/src/membership.rs crates/protocols/src/multi_or.rs crates/protocols/src/pointer_chase.rs crates/protocols/src/roll_call.rs

crates/protocols/src/lib.rs:
crates/protocols/src/broadcast.rs:
crates/protocols/src/census.rs:
crates/protocols/src/combinators.rs:
crates/protocols/src/firefly.rs:
crates/protocols/src/input_set.rs:
crates/protocols/src/leader.rs:
crates/protocols/src/membership.rs:
crates/protocols/src/multi_or.rs:
crates/protocols/src/pointer_chase.rs:
crates/protocols/src/roll_call.rs:
