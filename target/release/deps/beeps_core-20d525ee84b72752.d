/root/repo/target/release/deps/beeps_core-20d525ee84b72752.d: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/hierarchical.rs crates/core/src/one_to_zero.rs crates/core/src/outcome.rs crates/core/src/owned_rounds.rs crates/core/src/owners.rs crates/core/src/params.rs crates/core/src/repetition.rs crates/core/src/rewind.rs crates/core/src/simulator.rs

/root/repo/target/release/deps/beeps_core-20d525ee84b72752: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/hierarchical.rs crates/core/src/one_to_zero.rs crates/core/src/outcome.rs crates/core/src/owned_rounds.rs crates/core/src/owners.rs crates/core/src/params.rs crates/core/src/repetition.rs crates/core/src/rewind.rs crates/core/src/simulator.rs

crates/core/src/lib.rs:
crates/core/src/driver.rs:
crates/core/src/hierarchical.rs:
crates/core/src/one_to_zero.rs:
crates/core/src/outcome.rs:
crates/core/src/owned_rounds.rs:
crates/core/src/owners.rs:
crates/core/src/params.rs:
crates/core/src/repetition.rs:
crates/core/src/rewind.rs:
crates/core/src/simulator.rs:
