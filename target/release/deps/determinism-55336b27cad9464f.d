/root/repo/target/release/deps/determinism-55336b27cad9464f.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-55336b27cad9464f: tests/determinism.rs

tests/determinism.rs:
