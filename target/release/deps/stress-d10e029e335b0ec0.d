/root/repo/target/release/deps/stress-d10e029e335b0ec0.d: tests/stress.rs

/root/repo/target/release/deps/stress-d10e029e335b0ec0: tests/stress.rs

tests/stress.rs:
