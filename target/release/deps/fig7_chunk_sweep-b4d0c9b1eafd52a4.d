/root/repo/target/release/deps/fig7_chunk_sweep-b4d0c9b1eafd52a4.d: crates/bench/src/bin/fig7_chunk_sweep.rs

/root/repo/target/release/deps/fig7_chunk_sweep-b4d0c9b1eafd52a4: crates/bench/src/bin/fig7_chunk_sweep.rs

crates/bench/src/bin/fig7_chunk_sweep.rs:
