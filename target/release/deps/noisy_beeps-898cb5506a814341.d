/root/repo/target/release/deps/noisy_beeps-898cb5506a814341.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/noisy_beeps-898cb5506a814341: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
