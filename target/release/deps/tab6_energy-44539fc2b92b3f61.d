/root/repo/target/release/deps/tab6_energy-44539fc2b92b3f61.d: crates/bench/src/bin/tab6_energy.rs

/root/repo/target/release/deps/tab6_energy-44539fc2b92b3f61: crates/bench/src/bin/tab6_energy.rs

crates/bench/src/bin/tab6_energy.rs:
