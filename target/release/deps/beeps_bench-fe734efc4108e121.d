/root/repo/target/release/deps/beeps_bench-fe734efc4108e121.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/beeps_bench-fe734efc4108e121: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/runner.rs:
