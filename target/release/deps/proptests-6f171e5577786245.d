/root/repo/target/release/deps/proptests-6f171e5577786245.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-6f171e5577786245: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
