/root/repo/target/release/deps/tab4_repetition_scheme-529b2f8ad3c719a2.d: crates/bench/src/bin/tab4_repetition_scheme.rs

/root/repo/target/release/deps/tab4_repetition_scheme-529b2f8ad3c719a2: crates/bench/src/bin/tab4_repetition_scheme.rs

crates/bench/src/bin/tab4_repetition_scheme.rs:
