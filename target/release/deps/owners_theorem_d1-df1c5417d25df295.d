/root/repo/target/release/deps/owners_theorem_d1-df1c5417d25df295.d: tests/owners_theorem_d1.rs

/root/repo/target/release/deps/owners_theorem_d1-df1c5417d25df295: tests/owners_theorem_d1.rs

tests/owners_theorem_d1.rs:
