/root/repo/target/release/deps/fig4_zeta_progress_measure-7f1c2c83270b17f4.d: crates/bench/src/bin/fig4_zeta_progress_measure.rs

/root/repo/target/release/deps/fig4_zeta_progress_measure-7f1c2c83270b17f4: crates/bench/src/bin/fig4_zeta_progress_measure.rs

crates/bench/src/bin/fig4_zeta_progress_measure.rs:
