/root/repo/target/release/deps/tab3_feasible_sets-8d6c7071f3e9b262.d: crates/bench/src/bin/tab3_feasible_sets.rs

/root/repo/target/release/deps/tab3_feasible_sets-8d6c7071f3e9b262: crates/bench/src/bin/tab3_feasible_sets.rs

crates/bench/src/bin/tab3_feasible_sets.rs:
