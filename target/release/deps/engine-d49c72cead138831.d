/root/repo/target/release/deps/engine-d49c72cead138831.d: crates/bench/tests/engine.rs

/root/repo/target/release/deps/engine-d49c72cead138831: crates/bench/tests/engine.rs

crates/bench/tests/engine.rs:
