/root/repo/target/release/deps/beeps_core-2c606c011ba546be.d: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/hierarchical.rs crates/core/src/one_to_zero.rs crates/core/src/outcome.rs crates/core/src/owned_rounds.rs crates/core/src/owners.rs crates/core/src/params.rs crates/core/src/repetition.rs crates/core/src/rewind.rs crates/core/src/simulator.rs

/root/repo/target/release/deps/libbeeps_core-2c606c011ba546be.rlib: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/hierarchical.rs crates/core/src/one_to_zero.rs crates/core/src/outcome.rs crates/core/src/owned_rounds.rs crates/core/src/owners.rs crates/core/src/params.rs crates/core/src/repetition.rs crates/core/src/rewind.rs crates/core/src/simulator.rs

/root/repo/target/release/deps/libbeeps_core-2c606c011ba546be.rmeta: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/hierarchical.rs crates/core/src/one_to_zero.rs crates/core/src/outcome.rs crates/core/src/owned_rounds.rs crates/core/src/owners.rs crates/core/src/params.rs crates/core/src/repetition.rs crates/core/src/rewind.rs crates/core/src/simulator.rs

crates/core/src/lib.rs:
crates/core/src/driver.rs:
crates/core/src/hierarchical.rs:
crates/core/src/one_to_zero.rs:
crates/core/src/outcome.rs:
crates/core/src/owned_rounds.rs:
crates/core/src/owners.rs:
crates/core/src/params.rs:
crates/core/src/repetition.rs:
crates/core/src/rewind.rs:
crates/core/src/simulator.rs:
