/root/repo/target/release/deps/proptests-26262395f66c464f.d: crates/ecc/tests/proptests.rs

/root/repo/target/release/deps/proptests-26262395f66c464f: crates/ecc/tests/proptests.rs

crates/ecc/tests/proptests.rs:
