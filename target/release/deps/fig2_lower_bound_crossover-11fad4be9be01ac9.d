/root/repo/target/release/deps/fig2_lower_bound_crossover-11fad4be9be01ac9.d: crates/bench/src/bin/fig2_lower_bound_crossover.rs

/root/repo/target/release/deps/fig2_lower_bound_crossover-11fad4be9be01ac9: crates/bench/src/bin/fig2_lower_bound_crossover.rs

crates/bench/src/bin/fig2_lower_bound_crossover.rs:
