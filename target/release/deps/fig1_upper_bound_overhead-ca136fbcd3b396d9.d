/root/repo/target/release/deps/fig1_upper_bound_overhead-ca136fbcd3b396d9.d: crates/bench/src/bin/fig1_upper_bound_overhead.rs

/root/repo/target/release/deps/fig1_upper_bound_overhead-ca136fbcd3b396d9: crates/bench/src/bin/fig1_upper_bound_overhead.rs

crates/bench/src/bin/fig1_upper_bound_overhead.rs:
