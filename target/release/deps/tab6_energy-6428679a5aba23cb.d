/root/repo/target/release/deps/tab6_energy-6428679a5aba23cb.d: crates/bench/src/bin/tab6_energy.rs

/root/repo/target/release/deps/tab6_energy-6428679a5aba23cb: crates/bench/src/bin/tab6_energy.rs

crates/bench/src/bin/tab6_energy.rs:
