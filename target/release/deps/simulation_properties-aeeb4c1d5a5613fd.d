/root/repo/target/release/deps/simulation_properties-aeeb4c1d5a5613fd.d: tests/simulation_properties.rs

/root/repo/target/release/deps/simulation_properties-aeeb4c1d5a5613fd: tests/simulation_properties.rs

tests/simulation_properties.rs:
