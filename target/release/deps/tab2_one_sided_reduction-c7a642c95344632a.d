/root/repo/target/release/deps/tab2_one_sided_reduction-c7a642c95344632a.d: crates/bench/src/bin/tab2_one_sided_reduction.rs

/root/repo/target/release/deps/tab2_one_sided_reduction-c7a642c95344632a: crates/bench/src/bin/tab2_one_sided_reduction.rs

crates/bench/src/bin/tab2_one_sided_reduction.rs:
