/root/repo/target/release/deps/tab1_owners_phase-7851e98ddc83145d.d: crates/bench/src/bin/tab1_owners_phase.rs

/root/repo/target/release/deps/tab1_owners_phase-7851e98ddc83145d: crates/bench/src/bin/tab1_owners_phase.rs

crates/bench/src/bin/tab1_owners_phase.rs:
