/root/repo/target/release/examples/sensor_network-64f7cebe290dec56.d: examples/sensor_network.rs

/root/repo/target/release/examples/sensor_network-64f7cebe290dec56: examples/sensor_network.rs

examples/sensor_network.rs:
