/root/repo/target/release/examples/trace-e227a30dd35e456e.d: examples/trace.rs

/root/repo/target/release/examples/trace-e227a30dd35e456e: examples/trace.rs

examples/trace.rs:
