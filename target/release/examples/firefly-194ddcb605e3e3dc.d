/root/repo/target/release/examples/firefly-194ddcb605e3e3dc.d: examples/firefly.rs

/root/repo/target/release/examples/firefly-194ddcb605e3e3dc: examples/firefly.rs

examples/firefly.rs:
