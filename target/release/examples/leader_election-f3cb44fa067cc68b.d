/root/repo/target/release/examples/leader_election-f3cb44fa067cc68b.d: examples/leader_election.rs

/root/repo/target/release/examples/leader_election-f3cb44fa067cc68b: examples/leader_election.rs

examples/leader_election.rs:
