/root/repo/target/release/examples/census-bc898b2c4cc2af46.d: examples/census.rs

/root/repo/target/release/examples/census-bc898b2c4cc2af46: examples/census.rs

examples/census.rs:
