/root/repo/target/release/examples/quickstart-e890468aa3fb3dd1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e890468aa3fb3dd1: examples/quickstart.rs

examples/quickstart.rs:
