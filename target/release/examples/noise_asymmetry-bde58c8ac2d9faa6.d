/root/repo/target/release/examples/noise_asymmetry-bde58c8ac2d9faa6.d: examples/noise_asymmetry.rs

/root/repo/target/release/examples/noise_asymmetry-bde58c8ac2d9faa6: examples/noise_asymmetry.rs

examples/noise_asymmetry.rs:
