/root/repo/target/release/examples/owners_phase-7c6cf56589dc954c.d: examples/owners_phase.rs

/root/repo/target/release/examples/owners_phase-7c6cf56589dc954c: examples/owners_phase.rs

examples/owners_phase.rs:
