#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   scripts/tier1.sh
#
# Runs the release build, the full test suite, clippy with warnings
# denied, the beeps-lint static-analysis pass, the formatting check,
# a one-iteration smoke run of the hot-path benchmark harness plus
# its baseline-comparison plumbing, and observed smoke runs of
# fig6_phase_breakdown and fig_scale — the same sequence CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo xtask lint
# Same findings as SARIF: proves the emitter stays valid on every run
# (CI uploads this file for PR annotations).
cargo xtask lint --format sarif > target/beeps-lint.sarif
cargo fmt --check
# Smoke-run the pinned benchmark harness (1 iteration, tiny rounds)
# through the regression-gate script: catches bit-rot in the bench
# binary and the comparison plumbing — including the bit-sliced
# "lanes" and collapsed-engine "soa" sections the ratio gates read,
# and the presence of every required gated key (executor.lanes.*,
# scheme.*.batch, scheme.repetition.soa, channel.lanes.sparse.*): a
# renamed or dropped gated row fails the smoke, not just the full run.
# Run `scripts/bench_compare.sh` without --smoke for the real >25%
# regression gate plus the >=4x lane / >=3x soa engine floors.
scripts/bench_compare.sh --smoke
# Observability smoke: a real experiment run under --progress --profile
# must produce a loadable Chrome trace and a sealed JSONL run log
# (validated by the dependency-free observe-check parser).
BEEPS_EXPERIMENTS_DIR=target/observe-smoke \
  cargo run --release -q -p beeps-bench --bin fig6_phase_breakdown -- \
  --threads 2 --progress --profile target/observe-smoke/fig6.trace.json \
  >/dev/null
cargo xtask observe-check \
  target/observe-smoke/fig6.trace.json \
  target/observe-smoke/fig6_phase_breakdown.runlog.jsonl
# Scaling smoke: fig_scale's --smoke sweep (n up to 10^4) exercises the
# collapsed struct-of-arrays engines, the sparse channel, and windowed
# transcript retention end to end; the sealed run log (with the
# peak_rss_bytes summary field) must validate like any other.
BEEPS_EXPERIMENTS_DIR=target/observe-smoke \
  cargo run --release -q -p beeps-bench --bin fig_scale -- \
  --smoke --threads 2 --progress \
  --profile target/observe-smoke/fig_scale.trace.json >/dev/null
cargo xtask observe-check \
  target/observe-smoke/fig_scale.trace.json \
  target/observe-smoke/fig_scale.runlog.jsonl
echo "tier-1: all green"
