#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   scripts/tier1.sh
#
# Runs the release build, the full test suite, clippy with warnings
# denied, the beeps-lint static-analysis pass, and the formatting
# check — the same sequence CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo xtask lint
cargo fmt --check
echo "tier-1: all green"
