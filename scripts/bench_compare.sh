#!/usr/bin/env bash
# Regression gate for the pinned hot-path benchmarks.
#
#   scripts/bench_compare.sh [--smoke]
#
# Re-runs bench_hotpaths against the checked-in BENCH_hotpaths.json and
# fails when any benchmark regresses by more than BEEPS_BENCH_TOLERANCE
# percent (default 25, i.e. speedup < 0.75 relative to the pinned
# numbers). The harness also emits a "lanes" section — the bit-sliced
# engine's per-trial speedup over its scalar twin, measured within the
# same run — and full mode fails when any lane ratio drops below
# BEEPS_LANES_FLOOR (default 4); likewise a "soa" section — the
# collapsed struct-of-arrays engine and the sparse channel against
# their pre-scaling twins — gated at BEEPS_SOA_FLOOR (default 3).
# When the baseline was pinned on different hardware (the config
# block's host_cores / beeps_threads fields differ from this run's),
# the speedup comparison warns instead of failing: cross-machine
# ns/op deltas are provenance, not regressions. Every gated ratio key
# (and its speedup coverage in the pinned baseline) is *required*:
# a benchmark that disappears from a gated section is a hard failure,
# not a silent skip, in both modes. --smoke runs the 1-iteration
# harness instead: it exercises the harness, the comparison plumbing,
# and the required-key checks end to end but skips the numeric
# thresholds, because 1-iteration numbers are noise — that is the mode
# tier1.sh and CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${BEEPS_BENCH_TOLERANCE:-25}"
SMOKE=""
[[ "${1:-}" == "--smoke" ]] && SMOKE="--smoke"

BASELINE=BENCH_hotpaths.json
OUT=target/BENCH_compare.json

# shellcheck disable=SC2086 # SMOKE is intentionally empty or one flag
cargo run --release -q -p beeps-bench --bin bench_hotpaths -- \
  ${SMOKE} --baseline "$BASELINE" --out "$OUT"

# The harness embeds per-benchmark speedups (pinned ns / current ns) as
# a flat "speedup":{"name":float,…} object — the last section of the
# file, with no nested braces.
SPEEDUPS=$(sed -n 's/.*"speedup":{\([^}]*\)}.*/\1/p' "$OUT")
if [[ -z "$SPEEDUPS" ]]; then
  echo "bench_compare: no speedup section in $OUT (is $BASELINE readable?)" >&2
  exit 1
fi

# The lane gate reads the same-run "lanes" section (scalar ns ÷ lane
# ns per scalar benchmark name) — also flat, no nested braces.
LANES_SECTION=$(sed -n 's/.*"lanes":{\([^}]*\)}.*/\1/p' "$OUT")
if [[ -z "$LANES_SECTION" ]]; then
  echo "bench_compare: no lanes section in $OUT (bench_hotpaths too old?)" >&2
  exit 1
fi

# Same shape for the "soa" section: collapsed-engine and sparse-channel
# ratios over their pre-scaling twins, measured within the same run.
SOA_SECTION=$(sed -n 's/.*"soa":{\([^}]*\)}.*/\1/p' "$OUT")
if [[ -z "$SOA_SECTION" ]]; then
  echo "bench_compare: no soa section in $OUT (bench_hotpaths too old?)" >&2
  exit 1
fi

# Every gated ratio the harness is supposed to emit, by section. A
# missing key is a hard failure even in smoke mode: if a benchmark row
# is renamed or dropped, its floor must not silently stop applying.
REQUIRED_LANES=(
  executor.run.correlated
  executor.run.independent
  scheme.repetition.n64
  scheme.rewind
  scheme.hierarchical
  scheme.one_to_zero
)
REQUIRED_SOA=(
  party.soa.scalar.n1e4
  channel.dense.transmit.n1e4
  scheme.repetition.n64
)
STATUS=0
for key in "${REQUIRED_LANES[@]}"; do
  if [[ "$LANES_SECTION" != *"\"$key\":"* ]]; then
    echo "bench_compare: required lane ratio '$key' missing from lanes section" >&2
    STATUS=1
  fi
done
for key in "${REQUIRED_SOA[@]}"; do
  if [[ "$SOA_SECTION" != *"\"$key\":"* ]]; then
    echo "bench_compare: required soa ratio '$key' missing from soa section" >&2
    STATUS=1
  fi
done
# The speedup section must cover every gated scalar row too: a gated
# benchmark absent from the pinned baseline would otherwise be
# silently exempt from the regression tolerance.
for key in "${REQUIRED_LANES[@]}" "${REQUIRED_SOA[@]}" channel.lanes.sparse.n1e4 scheme.repetition.soa; do
  if [[ "$SPEEDUPS" != *"\"$key\":"* ]]; then
    echo "bench_compare: '$key' missing from speedup section (not in $BASELINE? re-pin it)" >&2
    STATUS=1
  fi
done
if [[ "$STATUS" != 0 ]]; then
  exit "$STATUS"
fi

# Provenance check, not a gate: if the pinned baseline came from a
# different machine (core count) or thread setting, absolute ns/op are
# not comparable — say so loudly, but let the tolerance gate decide.
host_field() { sed -n "s/.*\"$2\":\"\{0,1\}\([^\",}]*\)\"\{0,1\}[,}].*/\1/p" "$1" | head -n1; }
BASE_CORES=$(host_field "$BASELINE" host_cores)
BASE_THREADS=$(host_field "$BASELINE" beeps_threads)
CUR_CORES=$(host_field "$OUT" host_cores)
CUR_THREADS=$(host_field "$OUT" beeps_threads)
if [[ -z "$BASE_CORES" ]]; then
  echo "bench_compare: WARNING: $BASELINE has no host provenance (host_cores/beeps_threads); speedup deltas may reflect hardware, not code" >&2
elif [[ "$BASE_CORES" != "$CUR_CORES" || "$BASE_THREADS" != "$CUR_THREADS" ]]; then
  echo "bench_compare: WARNING: baseline pinned on host_cores=$BASE_CORES beeps_threads='$BASE_THREADS', this run has host_cores=$CUR_CORES beeps_threads='$CUR_THREADS'; speedup deltas may reflect hardware, not code" >&2
fi

if [[ -n "$SMOKE" ]]; then
  echo "bench_compare: smoke mode — harness, lanes and soa sections, and comparison plumbing OK, thresholds skipped"
  exit 0
fi

FLOOR=$(awk -v t="$TOLERANCE" 'BEGIN { printf "%.4f", 1.0 - t / 100.0 }')
STATUS=0
IFS=',' read -ra ENTRIES <<<"$SPEEDUPS"
for entry in "${ENTRIES[@]}"; do
  name="${entry%%:*}"
  name="${name//\"/}"
  value="${entry##*:}"
  ok=$(awk -v v="$value" -v f="$FLOOR" 'BEGIN { print (v >= f) ? 1 : 0 }')
  if [[ "$ok" != 1 ]]; then
    echo "bench_compare: $name regressed: speedup ${value}x < ${FLOOR}x (tolerance ${TOLERANCE}%)" >&2
    STATUS=1
  fi
done
LANE_FLOOR="${BEEPS_LANES_FLOOR:-4}"
IFS=',' read -ra LANE_ENTRIES <<<"$LANES_SECTION"
for entry in "${LANE_ENTRIES[@]}"; do
  name="${entry%%:*}"
  name="${name//\"/}"
  value="${entry##*:}"
  ok=$(awk -v v="$value" -v f="$LANE_FLOOR" 'BEGIN { print (v >= f) ? 1 : 0 }')
  if [[ "$ok" != 1 ]]; then
    echo "bench_compare: lane engine on $name only ${value}x vs scalar, floor ${LANE_FLOOR}x" >&2
    STATUS=1
  fi
done
SOA_FLOOR="${BEEPS_SOA_FLOOR:-3}"
IFS=',' read -ra SOA_ENTRIES <<<"$SOA_SECTION"
for entry in "${SOA_ENTRIES[@]}"; do
  name="${entry%%:*}"
  name="${name//\"/}"
  value="${entry##*:}"
  ok=$(awk -v v="$value" -v f="$SOA_FLOOR" 'BEGIN { print (v >= f) ? 1 : 0 }')
  if [[ "$ok" != 1 ]]; then
    echo "bench_compare: scaling path on $name only ${value}x vs its twin, floor ${SOA_FLOOR}x" >&2
    STATUS=1
  fi
done

if [[ "$STATUS" == 0 ]]; then
  echo "bench_compare: all benchmarks within ${TOLERANCE}% of $BASELINE; lane ratios >= ${LANE_FLOOR}x; soa ratios >= ${SOA_FLOOR}x"
fi
exit "$STATUS"
