//! Command-line driver: parse a scenario description, run it, report.
//!
//! The `beeps` binary (`src/bin/beeps.rs`) is a thin wrapper over this
//! module so the parsing and dispatch logic is unit-testable.
//!
//! ```text
//! beeps run --protocol input-set --n 8 --noise correlated --eps 0.1 \
//!           --scheme rewind --seed 42 --trials 5 --threads 4
//! ```
//!
//! Every scheme is dispatched through the [`Simulator`] trait object —
//! one code path for all six schemes — and trials execute on
//! `beeps-bench`'s seed-deterministic [`TrialRunner`], so `--threads`
//! changes wall-clock time but never the report.

use beeps_bench::{Observation, Trial, TrialRunner};
use beeps_channel::{run_noiseless, NoiseModel, Protocol, UniquelyOwned};
use beeps_core::{
    HierarchicalSimulator, NakedSimulator, OneToZeroSimulator, OwnedRoundsSimulator,
    RepetitionSimulator, RewindSimulator, SimError, Simulator, SimulatorConfig,
};
use beeps_metrics::MetricsRegistry;
use beeps_protocols::{Broadcast, InputSet, LeaderElection, Membership, PointerChase, RollCall};
use rand::{rngs::StdRng, Rng};
use std::fmt;

/// Workloads runnable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The paper's `InputSet_n` task.
    InputSet,
    /// Bitwise-maximum leader election.
    Leader,
    /// Interval-search membership resolution.
    Membership,
    /// One-round-per-party attendance count.
    RollCall,
    /// Single-speaker broadcast (party 0 speaks).
    Broadcast,
    /// Sequential pointer chasing.
    PointerChase,
}

/// Coding schemes runnable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// No coding: the noiseless protocol run naked over the noisy channel.
    Naked,
    /// Footnote 1: per-round repetition with threshold majority.
    Repetition,
    /// Theorem 1.2: chunk/owners/verify with rewind.
    Rewind,
    /// Appendix D.2 verbatim: hierarchical binary-search progress checks.
    Hierarchical,
    /// §2: the constant-overhead scheme (requires `1→0`-only noise).
    OneToZero,
    /// \[EKS18\]-style owned-rounds scheme (uniquely-owned protocols:
    /// roll-call, broadcast, pointer-chase).
    Owned,
}

/// Which top-level subcommand was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// `beeps run` — per-trial report, optionally followed by metrics.
    Run,
    /// `beeps metrics` — run the scenario and print only the metrics view.
    Metrics,
}

/// How the metrics view is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Human-readable per-phase and counter/histogram tables.
    Table,
    /// Prometheus-style text exposition.
    Prom,
}

/// A fully parsed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Which subcommand dispatched this scenario.
    pub command: CommandKind,
    /// Which workload to run.
    pub protocol: ProtocolKind,
    /// Number of parties.
    pub n: usize,
    /// Channel model.
    pub noise: NoiseModel,
    /// Which coding scheme protects the run.
    pub scheme: SchemeKind,
    /// Base RNG seed.
    pub seed: u64,
    /// Independent trials to run.
    pub trials: u64,
    /// Worker threads for the trial runner; `None` falls back to
    /// `BEEPS_THREADS` and then the machine's available parallelism.
    pub threads: Option<usize>,
    /// Print the metrics view after the report (`--metrics`); always on
    /// for the `metrics` subcommand.
    pub metrics: bool,
    /// Rendering for the metrics view (`--metrics-format table|prom`).
    pub metrics_format: MetricsFormat,
    /// Render a live progress line to stderr (`--progress`, or the
    /// `BEEPS_PROGRESS` environment variable).
    pub progress: bool,
    /// Write a Chrome trace-event profile to this path (`--profile`).
    pub profile: Option<String>,
}

impl Scenario {
    fn runner(&self) -> TrialRunner {
        self.threads
            .map_or_else(TrialRunner::from_env, TrialRunner::new)
    }

    /// The observer stack this scenario's flags (plus `BEEPS_PROGRESS`)
    /// ask for; inert when none do. Observation never changes the
    /// report or the metrics view.
    fn observation(&self) -> Observation {
        let mut flags: Vec<String> = Vec::new();
        if self.progress {
            flags.push("--progress".into());
        }
        if let Some(path) = &self.profile {
            flags.push(format!("--profile={path}"));
        }
        Observation::from_args("beeps_cli", self.seed, &flags)
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text for the binary.
pub const USAGE: &str = "\
usage: beeps run [options]        per-trial report (add --metrics for the
                                  deterministic metrics view)
       beeps metrics [options]    run the scenario, print only the metrics

options:
  --protocol input-set|leader|membership|roll-call|broadcast|pointer-chase
                                                     (default input-set)
  --n <parties>                                      (default 8)
  --noise noiseless|correlated|up|down|independent   (default correlated)
  --eps <0..1>                                       (default 0.333)
  --scheme naked|repetition|rewind|hierarchical|one-to-zero|owned
                                                     (default rewind)
  --seed <u64>                                       (default 1)
  --trials <count>                                   (default 5)
  --threads <count>        (default: BEEPS_THREADS, else all cores;
                            results are identical for any value)
  --metrics                print counters/histograms after the report
  --metrics-format table|prom                        (default table)
  --progress               live trials/s + ETA line on stderr (also
                           enabled by BEEPS_PROGRESS=1)
  --profile <path>         write a Chrome trace-event JSON profile of
                           the run (load in chrome://tracing, speedscope,
                           or Perfetto) plus a phase summary table

The metrics view contains only deterministic aggregates: it is
byte-identical for any --threads value. Wall-clock timings are never
part of it. --progress and --profile observe on the side: they never
change the report or the metrics view.
";

/// Parses `args` (without the program name) into a [`Scenario`].
///
/// # Errors
///
/// Returns [`ParseError`] with a human-readable message on unknown
/// commands, flags, or malformed values.
pub fn parse(args: &[String]) -> Result<Scenario, ParseError> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("run") => CommandKind::Run,
        Some("metrics") => CommandKind::Metrics,
        Some(other) => return Err(ParseError(format!("unknown command `{other}`"))),
        None => return Err(ParseError("missing command".into())),
    };

    let mut protocol = ProtocolKind::InputSet;
    let mut n = 8usize;
    let mut noise_kind = "correlated".to_owned();
    let mut eps = 1.0 / 3.0;
    let mut scheme = SchemeKind::Rewind;
    let mut seed = 1u64;
    let mut trials = 5u64;
    let mut threads = None;
    let mut metrics = command == CommandKind::Metrics;
    let mut metrics_format = MetricsFormat::Table;
    let mut progress = false;
    let mut profile = None;

    while let Some(flag) = it.next() {
        if flag == "--metrics" {
            metrics = true;
            continue;
        }
        if flag == "--progress" {
            progress = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| ParseError(format!("flag {flag} needs a value")))?;
        match flag.as_str() {
            "--protocol" => {
                protocol = match value.as_str() {
                    "input-set" => ProtocolKind::InputSet,
                    "leader" => ProtocolKind::Leader,
                    "membership" => ProtocolKind::Membership,
                    "roll-call" => ProtocolKind::RollCall,
                    "broadcast" => ProtocolKind::Broadcast,
                    "pointer-chase" => ProtocolKind::PointerChase,
                    other => return Err(ParseError(format!("unknown protocol `{other}`"))),
                };
            }
            "--n" => {
                n = value
                    .parse()
                    .map_err(|_| ParseError(format!("bad party count `{value}`")))?;
                if n == 0 {
                    return Err(ParseError("party count must be positive".into()));
                }
            }
            "--noise" => noise_kind = value.clone(),
            "--eps" => {
                eps = value
                    .parse()
                    .map_err(|_| ParseError(format!("bad eps `{value}`")))?;
            }
            "--scheme" => {
                scheme = match value.as_str() {
                    "naked" => SchemeKind::Naked,
                    "repetition" => SchemeKind::Repetition,
                    "rewind" => SchemeKind::Rewind,
                    "hierarchical" => SchemeKind::Hierarchical,
                    "one-to-zero" => SchemeKind::OneToZero,
                    "owned" => SchemeKind::Owned,
                    other => return Err(ParseError(format!("unknown scheme `{other}`"))),
                };
            }
            "--seed" => {
                seed = value
                    .parse()
                    .map_err(|_| ParseError(format!("bad seed `{value}`")))?;
            }
            "--trials" => {
                trials = value
                    .parse()
                    .map_err(|_| ParseError(format!("bad trial count `{value}`")))?;
                if trials == 0 {
                    return Err(ParseError("need at least one trial".into()));
                }
            }
            "--threads" => {
                let count: usize = value
                    .parse()
                    .map_err(|_| ParseError(format!("bad thread count `{value}`")))?;
                if count == 0 {
                    return Err(ParseError("thread count must be positive".into()));
                }
                threads = Some(count);
            }
            "--metrics-format" => {
                metrics_format = match value.as_str() {
                    "table" => MetricsFormat::Table,
                    "prom" => MetricsFormat::Prom,
                    other => return Err(ParseError(format!("unknown metrics format `{other}`"))),
                };
            }
            "--profile" => profile = Some(value.clone()),
            other => return Err(ParseError(format!("unknown flag `{other}`"))),
        }
    }

    let noise = match noise_kind.as_str() {
        "noiseless" => NoiseModel::Noiseless,
        "correlated" => NoiseModel::Correlated { epsilon: eps },
        "up" => NoiseModel::OneSidedZeroToOne { epsilon: eps },
        "down" => NoiseModel::OneSidedOneToZero { epsilon: eps },
        "independent" => NoiseModel::Independent { epsilon: eps },
        other => return Err(ParseError(format!("unknown noise model `{other}`"))),
    };
    noise
        .validate()
        .map_err(|e| ParseError(format!("invalid noise: {e}")))?;

    Ok(Scenario {
        command,
        protocol,
        n,
        noise,
        scheme,
        seed,
        trials,
        threads,
        metrics,
        metrics_format,
        progress,
        profile,
    })
}

/// Result of running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Trials whose simulated transcript matched the noiseless one.
    pub exact: u64,
    /// Trials attempted.
    pub trials: u64,
    /// Mean channel-round overhead across completed trials.
    pub mean_overhead: f64,
    /// Human-readable lines for the terminal.
    pub lines: Vec<String>,
}

/// Runs a scenario and collects a [`Report`].
///
/// # Errors
///
/// Returns [`ParseError`] when the scheme/noise combination is invalid
/// (e.g. `one-to-zero` over two-sided noise).
pub fn run(scenario: &Scenario) -> Result<Report, ParseError> {
    run_with_metrics(scenario).map(|(report, _)| report)
}

/// Runs a scenario, collecting the [`Report`] together with the merged
/// [`MetricsRegistry`] of every trial.
///
/// Trial registries are merged in trial-index order, so the returned
/// registry's deterministic sections (counters, histograms, events) are
/// identical for any `--threads` value; only its wall-clock section
/// varies between runs.
///
/// # Errors
///
/// Returns [`ParseError`] when the scheme/noise combination is invalid
/// (e.g. `one-to-zero` over two-sided noise).
pub fn run_with_metrics(scenario: &Scenario) -> Result<(Report, MetricsRegistry), ParseError> {
    match scenario.protocol {
        ProtocolKind::InputSet => {
            let p = InputSet::new(scenario.n);
            let n = scenario.n;
            let gen = move |rng: &mut StdRng| -> Vec<usize> {
                (0..n).map(|_| rng.gen_range(0..2 * n)).collect()
            };
            drive(scenario, &p, gen)
        }
        ProtocolKind::Leader => {
            let p = LeaderElection::new(scenario.n, 10);
            let n = scenario.n;
            let gen = move |rng: &mut StdRng| -> Vec<usize> {
                (0..n).map(|_| rng.gen_range(0..1024)).collect()
            };
            drive(scenario, &p, gen)
        }
        ProtocolKind::Membership => {
            let id_space = (2 * scenario.n).next_power_of_two().max(2);
            let p = Membership::new(scenario.n, id_space);
            let n = scenario.n;
            let gen = move |rng: &mut StdRng| -> Vec<Option<usize>> {
                (0..n)
                    .map(|i| rng.gen_bool(0.5).then_some((i * 3) % id_space))
                    .collect()
            };
            drive(scenario, &p, gen)
        }
        ProtocolKind::RollCall => {
            let p = RollCall::new(scenario.n);
            let n = scenario.n;
            let gen = move |rng: &mut StdRng| -> Vec<bool> {
                (0..n).map(|_| rng.gen_bool(0.5)).collect()
            };
            drive_owned(scenario, &p, gen)
        }
        ProtocolKind::Broadcast => {
            let p = Broadcast::new(scenario.n, 0, 12);
            let n = scenario.n;
            let gen = move |rng: &mut StdRng| -> Vec<usize> {
                let mut inputs = vec![0usize; n];
                inputs[0] = rng.gen_range(0..4096);
                inputs
            };
            drive_owned(scenario, &p, gen)
        }
        ProtocolKind::PointerChase => {
            let width = 8;
            let p = PointerChase::new(scenario.n, width, 2 * scenario.n);
            let n = scenario.n;
            let gen = move |rng: &mut StdRng| -> Vec<Vec<usize>> {
                (0..n)
                    .map(|_| (0..width).map(|_| rng.gen_range(0..width)).collect())
                    .collect()
            };
            drive_owned(scenario, &p, gen)
        }
    }
}

/// Like [`drive`] but for uniquely-owned protocols, enabling `--scheme
/// owned` on top of the generic schemes.
fn drive_owned<P, G>(
    scenario: &Scenario,
    protocol: &P,
    gen: G,
) -> Result<(Report, MetricsRegistry), ParseError>
where
    P: UniquelyOwned + Sync,
    G: Fn(&mut StdRng) -> Vec<P::Input> + Sync,
{
    if scenario.scheme == SchemeKind::Owned {
        let config = SimulatorConfig::builder(scenario.n)
            .model(scenario.noise)
            .build();
        let sim = OwnedRoundsSimulator::new(protocol, config);
        return drive_with(scenario, protocol, &sim, &gen);
    }
    drive(scenario, protocol, gen)
}

/// Builds the scheme's [`Simulator`] and runs the shared trial loop —
/// every generic scheme flows through one `&dyn Simulator` path.
fn drive<P, G>(
    scenario: &Scenario,
    protocol: &P,
    gen: G,
) -> Result<(Report, MetricsRegistry), ParseError>
where
    P: Protocol + Sync,
    G: Fn(&mut StdRng) -> Vec<P::Input> + Sync,
{
    let config = SimulatorConfig::builder(scenario.n)
        .model(scenario.noise)
        .build();
    let sim: Box<dyn Simulator<P::Input, P::Output> + Sync + '_> = match scenario.scheme {
        SchemeKind::Naked => Box::new(NakedSimulator::new(protocol)),
        SchemeKind::Repetition => Box::new(RepetitionSimulator::new(protocol, config)),
        SchemeKind::Rewind => Box::new(RewindSimulator::new(protocol, config)),
        SchemeKind::Hierarchical => Box::new(HierarchicalSimulator::new(protocol, config)),
        SchemeKind::OneToZero => Box::new(OneToZeroSimulator::new(protocol, 2, 32.0)),
        SchemeKind::Owned => {
            return Err(ParseError(
                "--scheme owned needs a uniquely-owned protocol \
                 (roll-call, broadcast, pointer-chase)"
                    .into(),
            ))
        }
    };
    drive_with(scenario, protocol, sim.as_ref(), &gen)
}

/// What one CLI trial produced.
enum TrialOutcome {
    /// The scheme ran to completion.
    Done {
        /// Simulated transcript matched the noiseless one.
        exact: bool,
        /// Channel rounds over protocol rounds.
        overhead: f64,
    },
    /// The scheme's round budget ran out.
    Exhausted,
    /// The scheme rejected the noise model.
    Unsupported(&'static str),
}

/// Shared trial loop: runs the scenario's trials on the deterministic
/// parallel runner, dispatching through the [`Simulator`] trait object.
fn drive_with<P, G>(
    scenario: &Scenario,
    protocol: &P,
    sim: &(dyn Simulator<P::Input, P::Output> + Sync),
    gen: &G,
) -> Result<(Report, MetricsRegistry), ParseError>
where
    P: Protocol + Sync,
    G: Fn(&mut StdRng) -> Vec<P::Input> + Sync,
{
    let observation = scenario.observation();
    let runner = observation.attach(scenario.runner());
    let (outcomes, merged) = runner.run_with_metrics(
        scenario.seed,
        scenario.trials as usize,
        |trial: Trial, metrics: &mut MetricsRegistry| -> TrialOutcome {
            let mut input_rng = trial.sub_rng(0);
            let inputs = gen(&mut input_rng);
            let truth = run_noiseless(protocol, &inputs);
            match sim.simulate_with_metrics(&inputs, scenario.noise, trial.seed, metrics) {
                Ok(o) => TrialOutcome::Done {
                    exact: o.transcript() == truth.transcript(),
                    overhead: o.stats().overhead(),
                },
                Err(SimError::UnsupportedNoise { reason }) => TrialOutcome::Unsupported(reason),
                Err(_) => TrialOutcome::Exhausted,
            }
        },
    );
    observation.finish(Some(&merged));

    let mut exact = 0u64;
    let mut overhead_sum = 0.0f64;
    let mut completed = 0u64;
    let mut lines = Vec::new();
    for (t, outcome) in outcomes.iter().enumerate() {
        match outcome {
            TrialOutcome::Done {
                exact: ok,
                overhead,
            } => {
                completed += 1;
                overhead_sum += overhead;
                exact += u64::from(*ok);
                lines.push(format!(
                    "trial {t}: {} (overhead {overhead:.1}x)",
                    if *ok { "exact" } else { "WRONG" }
                ));
            }
            TrialOutcome::Exhausted => lines.push(format!("trial {t}: budget exhausted")),
            TrialOutcome::Unsupported(reason) => {
                return Err(ParseError(format!("scheme/noise mismatch: {reason}")))
            }
        }
    }

    Ok((
        Report {
            exact,
            trials: scenario.trials,
            mean_overhead: if completed > 0 {
                overhead_sum / completed as f64
            } else {
                f64::NAN
            },
            lines,
        },
        merged,
    ))
}

/// Renders the metrics view in the scenario's requested format.
///
/// Only deterministic sections are rendered — the output is
/// byte-identical for any thread count.
#[must_use]
pub fn render_metrics(scenario: &Scenario, metrics: &MetricsRegistry) -> String {
    match scenario.metrics_format {
        MetricsFormat::Table => {
            let phases = metrics.render_phase_table();
            if phases.is_empty() {
                metrics.render_table()
            } else {
                format!("{phases}\n{}", metrics.render_table())
            }
        }
        MetricsFormat::Prom => metrics.render_prometheus(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_defaults() {
        let s = parse(&args("run")).unwrap();
        assert_eq!(s.command, CommandKind::Run);
        assert_eq!(s.protocol, ProtocolKind::InputSet);
        assert_eq!(s.n, 8);
        assert_eq!(s.scheme, SchemeKind::Rewind);
        assert_eq!(s.threads, None);
        assert!(!s.metrics);
        assert_eq!(s.metrics_format, MetricsFormat::Table);
    }

    #[test]
    fn parses_metrics_flags() {
        let s = parse(&args("run --metrics --metrics-format prom --n 4")).unwrap();
        assert!(s.metrics);
        assert_eq!(s.metrics_format, MetricsFormat::Prom);
        assert_eq!(s.n, 4);

        let s = parse(&args("metrics --n 4")).unwrap();
        assert_eq!(s.command, CommandKind::Metrics);
        assert!(s.metrics, "the metrics subcommand implies --metrics");

        assert!(parse(&args("run --metrics-format csv")).is_err());
    }

    #[test]
    fn parses_observation_flags() {
        let s = parse(&args("run --n 4")).unwrap();
        assert!(!s.progress);
        assert_eq!(s.profile, None);

        let s = parse(&args("run --progress --profile out/trace.json --n 4")).unwrap();
        assert!(s.progress);
        assert_eq!(s.profile.as_deref(), Some("out/trace.json"));
        assert_eq!(s.n, 4);

        assert!(
            parse(&args("run --profile")).is_err(),
            "--profile needs a path"
        );
    }

    #[test]
    fn parses_full_flag_set() {
        let s = parse(&args(
            "run --protocol leader --n 6 --noise up --eps 0.25 --scheme hierarchical --seed 9 --trials 3 --threads 2",
        ))
        .unwrap();
        assert_eq!(s.protocol, ProtocolKind::Leader);
        assert_eq!(s.n, 6);
        assert_eq!(s.noise, NoiseModel::OneSidedZeroToOne { epsilon: 0.25 });
        assert_eq!(s.scheme, SchemeKind::Hierarchical);
        assert_eq!(s.seed, 9);
        assert_eq!(s.trials, 3);
        assert_eq!(s.threads, Some(2));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("run --protocol nope")).is_err());
        assert!(parse(&args("run --n 0")).is_err());
        assert!(parse(&args("run --eps 1.5")).is_err());
        assert!(parse(&args("run --scheme")).is_err());
        assert!(parse(&args("run --bogus 1")).is_err());
        assert!(parse(&args("run --threads 0")).is_err());
    }

    #[test]
    fn runs_a_small_scenario_end_to_end() {
        let s = parse(&args(
            "run --protocol input-set --n 4 --noise correlated --eps 0.1 --scheme rewind --trials 3",
        ))
        .unwrap();
        let report = run(&s).unwrap();
        assert_eq!(report.trials, 3);
        assert!(report.exact >= 2, "report: {report:?}");
        assert!(report.mean_overhead > 1.0);
    }

    #[test]
    fn report_is_identical_for_any_thread_count() {
        let base = "run --protocol input-set --n 6 --noise correlated --eps 0.1 \
                    --scheme rewind --seed 7 --trials 6";
        let serial = run(&parse(&args(&format!("{base} --threads 1"))).unwrap()).unwrap();
        for threads in [2, 4, 8] {
            let parallel =
                run(&parse(&args(&format!("{base} --threads {threads}"))).unwrap()).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn metrics_view_is_byte_identical_for_any_thread_count() {
        let base = "run --metrics --protocol input-set --n 6 --noise correlated --eps 0.1 \
                    --scheme rewind --seed 7 --trials 6";
        let scenario = parse(&args(&format!("{base} --threads 1"))).unwrap();
        let (serial_report, serial_metrics) = run_with_metrics(&scenario).unwrap();
        let serial_view = render_metrics(&scenario, &serial_metrics);
        assert!(serial_view.contains("sim.rewind"), "view: {serial_view}");
        for threads in [2, 8] {
            let scenario = parse(&args(&format!("{base} --threads {threads}"))).unwrap();
            let (report, metrics) = run_with_metrics(&scenario).unwrap();
            assert_eq!(serial_report, report, "threads={threads}");
            assert_eq!(serial_metrics, metrics, "threads={threads}");
            assert_eq!(
                serial_view,
                render_metrics(&scenario, &metrics),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn prom_rendering_exposes_counters() {
        let scenario = parse(&args(
            "metrics --metrics-format prom --n 4 --noise correlated --eps 0.1 --trials 2",
        ))
        .unwrap();
        let (_, metrics) = run_with_metrics(&scenario).unwrap();
        let exposition = render_metrics(&scenario, &metrics);
        assert!(
            exposition.contains("beeps_sim_rewind_runs_total"),
            "exposition: {exposition}"
        );
        assert!(!exposition.contains("wall"), "wall must stay out");
    }

    #[test]
    fn naked_scheme_reports_failures_under_noise() {
        let s = parse(&args(
            "run --protocol input-set --n 16 --noise correlated --eps 0.333 --scheme naked --trials 4",
        ))
        .unwrap();
        let report = run(&s).unwrap();
        assert!(report.exact <= 1, "naked runs should fail: {report:?}");
    }

    #[test]
    fn scheme_noise_mismatch_is_an_error() {
        let s = parse(&args(
            "run --scheme one-to-zero --noise correlated --trials 1 --n 4",
        ))
        .unwrap();
        assert!(run(&s).is_err());
    }

    #[test]
    fn all_protocols_run_under_the_rewind_scheme() {
        for proto in ["input-set", "leader", "membership", "roll-call"] {
            let s = parse(&args(&format!(
                "run --protocol {proto} --n 4 --noise correlated --eps 0.05 --trials 2"
            )))
            .unwrap();
            let report = run(&s).unwrap();
            assert!(report.exact >= 1, "{proto}: {report:?}");
        }
    }
}

#[cfg(test)]
mod owned_scheme_tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn owned_scheme_runs_on_owned_protocols() {
        for proto in ["roll-call", "broadcast", "pointer-chase"] {
            let s = parse(&args(&format!(
                "run --protocol {proto} --n 4 --noise correlated --eps 0.1 --scheme owned --trials 2"
            )))
            .unwrap();
            let report = run(&s).unwrap();
            assert!(report.exact >= 1, "{proto}: {report:?}");
        }
    }

    #[test]
    fn owned_scheme_rejected_for_unowned_protocols() {
        let s = parse(&args(
            "run --protocol input-set --scheme owned --trials 1 --n 4",
        ))
        .unwrap();
        assert!(run(&s).is_err());
    }

    #[test]
    fn new_protocols_run_under_generic_schemes() {
        for proto in ["broadcast", "pointer-chase"] {
            let s = parse(&args(&format!(
                "run --protocol {proto} --n 3 --noise correlated --eps 0.05 --scheme rewind --trials 2"
            )))
            .unwrap();
            let report = run(&s).unwrap();
            assert!(report.exact >= 1, "{proto}: {report:?}");
        }
    }
}
