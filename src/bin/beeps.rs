//! `beeps` — run noisy-beeping scenarios from the command line.
//!
//! ```text
//! cargo run --release --bin beeps -- run --protocol leader --n 8 \
//!     --noise correlated --eps 0.2 --scheme rewind --trials 5
//! cargo run --release --bin beeps -- metrics --scheme rewind --trials 5
//! ```

use noisy_beeps::cli;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = match cli::parse(&args) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("error: {err}\n\n{}", cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    if scenario.command == cli::CommandKind::Run {
        println!(
            "protocol {:?}, n = {}, noise {}, scheme {:?}, {} trials",
            scenario.protocol, scenario.n, scenario.noise, scenario.scheme, scenario.trials
        );
    }
    match cli::run_with_metrics(&scenario) {
        Ok((report, metrics)) => {
            if scenario.command == cli::CommandKind::Run {
                for line in &report.lines {
                    println!("  {line}");
                }
                println!(
                    "exact {}/{}  mean overhead {:.1}x",
                    report.exact, report.trials, report.mean_overhead
                );
            }
            if scenario.metrics {
                print!("{}", cli::render_metrics(&scenario, &metrics));
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
