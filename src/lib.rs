//! # noisy-beeps
//!
//! A full Rust reproduction of **“Noisy Beeps”** (Klim Efremenko, Gillat
//! Kol, Raghuvansh R. Saxena; PODC 2020): noise-resilient interactive
//! coding for the *n*-party beeping model, together with the executable
//! machinery of the paper's matching `Θ(log n)` upper and lower bounds.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`channel`] | `beeps-channel` | the beeping channel in all five noise regimes, the `(T, f, g)` protocol formalism, and the round executor |
//! | [`ecc`] | `beeps-ecc` | GF(2^m), Reed–Solomon, Hadamard, repetition, and concatenated codes used by Algorithm 1 |
//! | [`info`] | `beeps-info` | entropy/mutual-information and the tail bounds that size repetition counts |
//! | [`protocols`] | `beeps-protocols` | noiseless beeping protocols: `InputSet`, OR, leader election, census, membership, firefly sync |
//! | [`core`] | `beeps-core` | **the paper's contribution**: repetition simulation, Algorithm 1 chunk simulation with owners, the rewind hierarchy of Theorem 1.2, and the constant-overhead one-sided scheme |
//! | [`lowerbound`] | `beeps-lowerbound` | Theorem 1.1 made executable: feasible sets, good players, the ζ progress measure, and the overhead-crossover search |
//!
//! # Quickstart
//!
//! Simulate the paper's `InputSet_n` task over an `ε = 1/3` correlated-noise
//! beeping channel with the `O(log n)`-overhead scheme of Theorem 1.2:
//!
//! ```
//! use noisy_beeps::channel::{NoiseModel, Protocol};
//! use noisy_beeps::core::{RewindSimulator, SimulatorConfig};
//! use noisy_beeps::protocols::InputSet;
//!
//! let n = 8;
//! let protocol = InputSet::new(n);
//! let inputs: Vec<usize> = (0..n).map(|i| (3 * i) % (2 * n)).collect();
//!
//! // Ground truth: the deterministic noiseless execution.
//! let truth = noisy_beeps::channel::run_noiseless(&protocol, &inputs);
//!
//! let sim = RewindSimulator::new(&protocol, SimulatorConfig::builder(n).build());
//! let outcome = sim
//!     .simulate(&inputs, NoiseModel::Correlated { epsilon: 1.0 / 3.0 }, 0xBEE9)
//!     .expect("simulation produced a transcript");
//! assert_eq!(outcome.transcript(), truth.transcript());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cli;

pub use beeps_bench as bench;
pub use beeps_channel as channel;
pub use beeps_core as core;
pub use beeps_ecc as ecc;
pub use beeps_info as info;
pub use beeps_lowerbound as lowerbound;
pub use beeps_protocols as protocols;

pub use beeps_core::{NakedSimulator, Simulator};
